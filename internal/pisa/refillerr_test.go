package pisa

import (
	"crypto/rand"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"pisa/internal/geo"
)

// flakyRandom delegates to crypto/rand until failing is flipped, then
// errors every read.
type flakyRandom struct {
	failing atomic.Bool
}

func (f *flakyRandom) Read(p []byte) (int, error) {
	if f.failing.Load() {
		return 0, fmt.Errorf("injected entropy failure")
	}
	return rand.Read(p)
}

// Regression test for the silently-disarmed blinding refill bug: a
// background refill failure used to be handed to the first
// ProcessRequest that saw it and then forgotten, while auto-refill
// stayed off with nothing left to observe. The failure must now
// disarm explicitly, stay readable via BlindingRefillErr, surface in
// exactly one ProcessRequest, and clear only when
// EnableBlindingAutoRefill re-arms the pool.
func TestSDCBlindingRefillFailureDisarmsExplicitly(t *testing.T) {
	wp := testWatchParams(t)
	params := TestParams(wp)
	stp, err := NewSTP(rand.Reader, params.PaillierBits)
	if err != nil {
		t.Fatalf("NewSTP: %v", err)
	}
	src := &flakyRandom{}
	sdc, err := NewSDC("sdc-test", params, nil, stp, WithRandom(src))
	if err != nil {
		t.Fatalf("NewSDC: %v", err)
	}
	defer sdc.Close()
	su, err := NewSU(rand.Reader, "su-1", 7, params, sdc.Planner(), stp.GroupKey())
	if err != nil {
		t.Fatalf("NewSU: %v", err)
	}
	defer su.Close()
	if err := stp.RegisterSU("su-1", su.PublicKey()); err != nil {
		t.Fatalf("RegisterSU: %v", err)
	}
	req, err := su.PrepareRequest(map[int]int64{1: 1}, geo.Disclosure{})
	if err != nil {
		t.Fatal(err)
	}

	if err := sdc.EnableBlindingAutoRefill(4); err != nil {
		t.Fatal(err)
	}
	if !sdc.BlindingAutoRefillArmed() {
		t.Fatal("SDC not armed after EnableBlindingAutoRefill")
	}

	// With entropy failing, this request finds the pool empty, kicks
	// off a background refill (which fails), and its own online
	// blinding fallback fails too.
	src.failing.Store(true)
	if _, err := sdc.ProcessRequest(req); err == nil {
		t.Fatal("ProcessRequest succeeded with a failing entropy source")
	}
	sdc.WaitBlindingRefill()
	src.failing.Store(false)

	if sdc.BlindingAutoRefillArmed() {
		t.Error("refill failure did not disarm auto-refill")
	}
	if sdc.BlindingRefillErr() == nil {
		t.Error("BlindingRefillErr lost the refill failure")
	}

	// Exactly one ProcessRequest surfaces the background failure...
	if _, err := sdc.ProcessRequest(req); err == nil || !strings.Contains(err.Error(), "background blinding refill") {
		t.Fatalf("ProcessRequest did not surface the refill failure, got %v", err)
	}
	// ...and the next one works again via online blinding, while the
	// sticky error stays readable.
	if _, err := sdc.ProcessRequest(req); err != nil {
		t.Fatalf("ProcessRequest after surfaced failure: %v", err)
	}
	if sdc.BlindingRefillErr() == nil {
		t.Error("sticky BlindingRefillErr cleared by a request")
	}

	// Re-arming clears the sticky error and restores refills.
	if err := sdc.EnableBlindingAutoRefill(4); err != nil {
		t.Fatal(err)
	}
	if err := sdc.BlindingRefillErr(); err != nil {
		t.Errorf("BlindingRefillErr after re-arm = %v, want nil", err)
	}
	if _, err := sdc.ProcessRequest(req); err != nil {
		t.Fatal(err)
	}
	sdc.WaitBlindingRefill()
	if got := sdc.PooledBlinding(); got == 0 {
		t.Error("recovered auto-refill never restocked the pool")
	}
}
