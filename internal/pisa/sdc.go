package pisa

import (
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	"io"
	"log/slog"
	"math/big"
	"sync"
	"sync/atomic"
	"time"

	"pisa/internal/dsig"
	"pisa/internal/geo"
	"pisa/internal/matrix"
	"pisa/internal/paillier"
	"pisa/internal/parallel"
	"pisa/internal/watch"
)

// SDC is the spectrum database controller. It keeps the interference
// budget matrix N~ only in encrypted form and processes PU updates
// (eqs. 8-10) and SU requests (eqs. 11-17) homomorphically. The SDC
// never holds the group secret key, so it learns neither the PU
// channel receptions, nor the SU parameters, nor the decisions.
//
// Concurrency model: s.mu protects only the mutable protocol state
// (N~, the PU registry, the blinding pool, the serial counter). The
// expensive homomorphic work runs outside the lock over an immutable
// snapshot — ciphertexts are never mutated in place, so a snapshot of
// entry pointers stays valid — which lets concurrent SU requests and
// PU updates overlap. Per-block version counters detect when a column
// rebuild raced a newer update and must recompute.
type SDC struct {
	params  Params
	workers int // resolved worker-pool size (>= 1)
	issuer  string
	group   *paillier.PublicKey
	stp     STPService
	signer  *dsig.Signer
	public  *watch.System // public-data precomputation only: E, d^c
	ePlain  *matrix.Int   // plaintext E (public)
	random  io.Reader
	now     func() time.Time
	licTTL  time.Duration

	// chanLo, chanHi bound the channel rows [chanLo, chanHi) this
	// instance owns. A monolithic SDC owns every row; a shard of a
	// channel-sharded deployment (WithChannelWindow, DESIGN.md §15)
	// owns a slice, encrypts and rebuilds only its rows, and serves
	// them through ProcessShard — ProcessRequest refuses, because a
	// window-local decision is not the whole-matrix decision.
	chanLo, chanHi int

	// codec is the slot codec of a packed deployment
	// (Params.Packing), nil otherwise. It fixes the deployment's
	// layout: budgets live in nPack instead of nEnc, requests must
	// arrive packed, and the STP sign test runs slot-wise.
	codec *paillier.SlotCodec
	// betaCodec shares codec's slot geometry but opens the payload to
	// the full slot width: beta blinding factors are BetaBits wide,
	// which may exceed the PlaintextBits payload budget values obey.
	// Layout-compatible with codec (same slots x slot bits), so packed
	// betas subtract slot-wise from packed alpha*I.
	betaCodec *paillier.SlotCodec

	// batcher coalesces concurrent sign-test round trips when
	// Params.STPBatchWindow is set and the STP service supports
	// batching; nil otherwise.
	batcher *stpBatcher

	// cacheNonces feeds the encrypted-decision cache's hit path: one
	// pooled r^n factor re-randomises one served ciphertext, the same
	// fast-nonce machinery SU refreshes use. Nil when the cache is off.
	cacheNonces *paillier.NoncePool

	// cacheCtr mirrors the obs cache counters per instance: the obs
	// registry aggregates process-wide, so a sharded deployment reads
	// each shard's hit/miss/stale split from here (CacheStats).
	cacheCtr cacheCounters

	mu        sync.Mutex
	nEnc      *matrix.Enc                // N~: encrypted budgets (unpacked mode)
	nPack     *matrix.Packed             // N~: packed budgets (packed mode)
	puUpdates map[watch.PUID]*PUUpdate   // latest update per PU
	puBlocks  map[watch.PUID]geo.BlockID // fixed registered locations
	colVer    map[geo.BlockID]uint64     // bumped on every update registration
	// colApplied is bumped to the registration version a rebuild pass
	// actually folded into the stored budget, in the same critical
	// section as the write-back. It trails colVer while a rebuild is in
	// flight, which is exactly what makes it the right cache key: the
	// budget CONTENT a request snapshot reads is identified by
	// colApplied, not colVer (between registration and write-back the
	// old content is still being served — by recomputes and cache hits
	// alike, so the two always agree).
	colApplied map[geo.BlockID]uint64
	// cache memoises the aggregate output Ĩ per (sharing scope,
	// request shape); nil when Params.CacheEntries is 0. Guarded by mu.
	cache *decisionCache
	// cacheDomain maps an SUID to its operator-declared cache domain
	// (Params.CacheDomains). SUs absent from the map get a private
	// per-SU scope. Immutable after construction, so readable without
	// mu.
	cacheDomain map[string]string
	serial      uint64
	journal     func(*PUUpdate) error // WAL hook; called outside the lock

	blindPool      []blindFactors // offline-precomputed blinding tuples
	blindTarget    int            // auto-refill high-water mark; 0 disarms
	blindLow       int            // refill trigger
	blindRefilling bool
	blindClosed    bool // Close called: no new background refills
	// blindErr is the last background refill failure. It is sticky:
	// it stays readable via BlindingRefillErr until
	// EnableBlindingAutoRefill re-arms the pool, so every caller — not
	// just the first — can tell the pool is degraded. blindErrPending
	// additionally surfaces the failure through exactly one
	// ProcessRequest error.
	blindErr        error
	blindErrPending bool
	blindWG         sync.WaitGroup // outstanding background refills
}

// blindFactors is one precomputed (alpha, E(beta), epsilon) tuple for
// eq. 14. The beta encryption is the expensive part; precomputing it
// offline is what keeps online request processing at homomorphic-op
// speed (the paper's 219 s figure counts only the online SDC work).
type blindFactors struct {
	alpha   *big.Int
	betaEnc *paillier.Ciphertext
	eps     int64
}

// SDCOption customises SDC construction.
type SDCOption interface {
	apply(*SDC)
}

type sdcOptionFunc func(*SDC)

func (f sdcOptionFunc) apply(s *SDC) { f(s) }

// WithClock injects a deterministic time source (tests).
func WithClock(now func() time.Time) SDCOption {
	return sdcOptionFunc(func(s *SDC) { s.now = now })
}

// WithLicenseTTL sets the license validity window (default 24h).
func WithLicenseTTL(ttl time.Duration) SDCOption {
	return sdcOptionFunc(func(s *SDC) { s.licTTL = ttl })
}

// WithRandom injects the randomness source (default crypto/rand).
func WithRandom(r io.Reader) SDCOption {
	return sdcOptionFunc(func(s *SDC) { s.random = r })
}

// WithChannelWindow restricts the instance to the channel rows
// [lo, hi) of the budget matrix — one shard of a channel-sharded
// deployment. Only those rows are encrypted at boot and rebuilt on PU
// updates, and only ProcessShard may serve requests (the shard
// router, internal/pisa/shard, merges the per-shard partials and
// issues the license). The default window is the full channel range.
func WithChannelWindow(lo, hi int) SDCOption {
	return sdcOptionFunc(func(s *SDC) { s.chanLo, s.chanHi = lo, hi })
}

// WithUpdateJournal installs a write-ahead hook: every accepted PU
// update is passed to fn before it is acknowledged, so a durable
// deployment can append it to a log (internal/store). fn runs outside
// the SDC's state lock and must be safe for concurrent calls. A fn
// error rejects the update towards the PU; re-sending is idempotent.
func WithUpdateJournal(fn func(*PUUpdate) error) SDCOption {
	return sdcOptionFunc(func(s *SDC) { s.journal = fn })
}

// NewSDC builds the controller: performs the plaintext initialisation
// step of §IV-A1 (E matrix and protection distances from public data
// only), generates the license-signing key, and encrypts the initial
// budget matrix N~ = E~ under the group key fetched from the STP.
func NewSDC(issuer string, params Params, transmitters []watch.TVTransmitter, stp STPService, opts ...SDCOption) (*SDC, error) {
	s, err := newSDCBase(issuer, params, transmitters, stp, opts)
	if err != nil {
		return nil, err
	}
	if err := s.encryptInitialBudgets(); err != nil {
		return nil, err
	}
	return s, nil
}

// encryptInitialBudgets populates N~ = E~ for the channel rows this
// instance owns — shared by NewSDC and RestoreSDC's fresh-boot path.
// Packed deployments pad the slots beyond the last block with a
// constant 1: a padding slot's blinded test value is
// eps*(alpha*1 - beta), strictly positive before the flip
// (BetaBits < AlphaBits), so padding always "passes" and the grant
// test only has to offset the slot count.
func (s *SDC) encryptInitialBudgets() error {
	var err error
	if s.codec != nil {
		s.nPack, err = matrix.PackEncryptIntsWindow(s.random, s.group, s.codec, s.ePlain, 1, s.chanLo, s.chanHi, s.workers)
	} else {
		s.nEnc, err = matrix.EncryptIntsWindow(s.random, s.group, s.ePlain, s.chanLo, s.chanHi, s.workers)
	}
	if err != nil {
		return fmt.Errorf("pisa: encrypt initial budgets: %w", err)
	}
	return nil
}

// newSDCBase performs every construction step except populating the
// encrypted budget matrix: NewSDC encrypts a fresh N~ = E~, while
// RestoreSDC (persist.go) installs the matrix recovered from a
// snapshot instead.
func newSDCBase(issuer string, params Params, transmitters []watch.TVTransmitter, stp STPService, opts []SDCOption) (*SDC, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if stp == nil {
		return nil, fmt.Errorf("pisa: SDC requires an STP service")
	}
	public, err := watch.NewSystem(params.Watch, transmitters)
	if err != nil {
		return nil, fmt.Errorf("pisa: public precomputation: %w", err)
	}
	s := &SDC{
		params:     params,
		workers:    parallel.Resolve(params.Parallelism),
		issuer:     issuer,
		group:      stp.GroupKey(),
		stp:        stp,
		public:     public,
		ePlain:     public.EMatrix(),
		random:     rand.Reader,
		now:        time.Now,
		licTTL:     24 * time.Hour,
		puUpdates:  make(map[watch.PUID]*PUUpdate),
		puBlocks:   make(map[watch.PUID]geo.BlockID),
		colVer:     make(map[geo.BlockID]uint64),
		colApplied: make(map[geo.BlockID]uint64),
	}
	for _, opt := range opts {
		opt.apply(s)
	}
	if s.chanLo == 0 && s.chanHi == 0 {
		s.chanHi = params.Watch.Channels
	}
	if s.chanLo < 0 || s.chanHi > params.Watch.Channels || s.chanLo >= s.chanHi {
		return nil, fmt.Errorf("pisa: channel window [%d, %d) outside [0, %d)",
			s.chanLo, s.chanHi, params.Watch.Channels)
	}
	// Worker goroutines and background refills share the randomness
	// source; SharedReader serialises injected readers (crypto/rand is
	// passed through) without changing the byte stream.
	s.random = paillier.SharedReader(s.random)
	// Arm the fixed-base engine on the group key: budget encryptions,
	// column rebuilds and blinding-factor generation all take the
	// windowed fast path. Idempotent on a group key another role
	// already armed.
	if err := params.armFastExp(s.random, s.group); err != nil {
		return nil, fmt.Errorf("pisa: arm group key: %w", err)
	}
	s.signer, err = dsig.NewSigner(s.random, params.SignerBits)
	if err != nil {
		return nil, err
	}
	if s.codec, err = params.SlotCodec(); err != nil {
		return nil, err
	}
	if s.codec != nil {
		if err := s.codec.CheckKey(s.group); err != nil {
			return nil, fmt.Errorf("pisa: packing: %w", err)
		}
		if s.betaCodec, err = paillier.NewSlotCodec(s.codec.Slots(), s.codec.SlotBits(), s.codec.SlotBits()-2); err != nil {
			return nil, fmt.Errorf("pisa: packing: %w", err)
		}
	}
	// Arm the coalescing layer when a batch window is configured and
	// the STP service actually offers a batched entry point; otherwise
	// every sign test keeps its own round trip.
	if params.STPBatchWindow > 0 {
		if bc, ok := stp.(BatchConverter); ok {
			max := params.STPBatchMax
			if max == 0 {
				max = DefaultSTPBatchMax
			}
			if max >= 2 {
				s.batcher = newSTPBatcher(bc, params.STPBatchWindow, max)
			}
		}
	}
	if params.CacheEntries > 0 {
		s.cache = newDecisionCache(params.CacheEntries, params.CacheTTL)
		s.cacheDomain = make(map[string]string)
		for domain, members := range params.CacheDomains {
			for _, su := range members {
				s.cacheDomain[su] = domain
			}
		}
		s.cacheNonces = paillier.NewNoncePool(s.group, s.random, s.workers)
		// Size the nonce pool for roughly two full-footprint hits in
		// flight: one r^n factor per served ciphertext. Refills run in
		// the background; a dry pool falls back to online generation.
		cols := params.Watch.Grid.Blocks()
		if s.codec != nil {
			cols = (cols + s.codec.Slots() - 1) / s.codec.Slots()
		}
		target := 2 * params.Watch.Channels * cols
		if target > 4096 {
			target = 4096
		}
		if err := s.cacheNonces.SetAutoRefill(target); err != nil {
			return nil, fmt.Errorf("pisa: arm cache nonce pool: %w", err)
		}
	}
	return s, nil
}

// Packed reports whether this deployment stores and processes the
// budget matrix in packed form (Params.Packing).
func (s *SDC) Packed() bool { return s.codec != nil }

// ChannelWindow reports the channel rows [lo, hi) this instance owns.
func (s *SDC) ChannelWindow() (lo, hi int) { return s.chanLo, s.chanHi }

// windowed reports whether this instance owns only a slice of the
// channel rows (a shard), which bars the direct ProcessRequest path.
func (s *SDC) windowed() bool {
	return s.chanLo != 0 || s.chanHi != s.params.Watch.Channels
}

// convert routes one sign test to the STP: through the coalescing
// batcher when armed, directly otherwise. A request drained out of the
// batcher by Close (or racing Close's shutdown) falls back to its own
// direct round trip — Close's contract is that request processing
// keeps working, only the background machinery stops.
func (s *SDC) convert(req *SignRequest) (*SignResponse, error) {
	if s.batcher != nil {
		resp, err := s.batcher.convert(req)
		if err == errSTPBatcherClosed {
			return s.stp.ConvertSigns(req)
		}
		return resp, err
	}
	return s.stp.ConvertSigns(req)
}

// SetParallelism resizes the SDC's worker pool (see
// Params.Parallelism for the encoding). Intended for benchmarks and
// operator tooling; not safe to call concurrently with request or
// update processing.
func (s *SDC) SetParallelism(n int) {
	s.workers = parallel.Resolve(n)
	if s.nPack != nil {
		s.nPack.SetWorkers(s.workers)
	}
	if s.nEnc != nil {
		s.nEnc.SetWorkers(s.workers)
	}
}

// Parallelism reports the resolved worker-pool size.
func (s *SDC) Parallelism() int { return s.workers }

// VerifyKey returns the public key SUs use to check license
// signatures.
func (s *SDC) VerifyKey() *rsa.PublicKey { return s.signer.Public() }

// Planner returns the public-data planner (grid, d^c) for parties
// that need to build requests against this deployment.
func (s *SDC) Planner() *watch.Planner { return s.public.Planner() }

// EColumn returns the plaintext E column for a block — public data a
// PU needs to form its offset update W = T - E. The read takes the
// same snapshot + column-version discipline as ProcessRequest: the
// applied version is captured under the lock before and rechecked
// after the column walk, and the walk retries if a concurrent rebuild
// committed in between, so the column handed to watchctl is always
// one consistent generation.
func (s *SDC) EColumn(b geo.BlockID) ([]int64, error) {
	if !s.params.Watch.Grid.Valid(b) {
		return nil, fmt.Errorf("pisa: block %d invalid", b)
	}
	col := make([]int64, s.params.Watch.Channels)
	for {
		s.mu.Lock()
		ver := s.colApplied[b]
		s.mu.Unlock()
		for c := range col {
			v, err := s.ePlain.At(c, int(b))
			if err != nil {
				return nil, err
			}
			col[c] = v
		}
		s.mu.Lock()
		moved := s.colApplied[b] != ver
		s.mu.Unlock()
		if !moved {
			return col, nil
		}
		metrics().colRetries.Inc()
	}
}

// HandlePUUpdate ingests a channel-reception update (Figure 4 steps
// 4): stores the PU's latest W~ column and rebuilds the encrypted
// budget column N~(:, b) = E~(:, b) (+) sum of W~ columns at b
// (eqs. 9-10). The E column is re-encrypted fresh on every rebuild,
// matching the paper's measured update cost (about C encryptions plus
// C homomorphic additions, about 2.6 s at paper scale). The
// encryptions and folds run outside the state lock on the worker
// pool, so updates overlap with concurrent SU requests.
func (s *SDC) HandlePUUpdate(u *PUUpdate) (err error) {
	m := metrics()
	start := time.Now()
	defer func() {
		m.puUpdate.ObserveSince(start)
		if err != nil {
			m.puUpdateErrors.Inc()
		}
	}()
	if err := s.validateUpdate(u); err != nil {
		return err
	}
	s.mu.Lock()
	prev, hadPrev := s.puUpdates[u.PUID]
	if hadPrev && prev.Block != u.Block {
		s.mu.Unlock()
		return fmt.Errorf("pisa: PU %q registered at block %d, update claims %d (TV receiver locations are fixed)",
			u.PUID, prev.Block, u.Block)
	}
	s.puBlocks[u.PUID] = u.Block
	s.puUpdates[u.PUID] = u
	s.colVer[u.Block]++
	journal := s.journal
	s.mu.Unlock()
	// The WAL append runs outside the lock-shrunk critical section so
	// durable deployments keep the update/request concurrency. The
	// update is acknowledged only after it is journaled; on a journal
	// error the registration is rolled back and the PU sees a failure,
	// so it re-sends (idempotent). Two concurrent updates from the
	// *same* PU may reach the log in the opposite of their registration
	// order — a sequential PU client never does that, and cross-PU
	// interleavings are independent.
	if journal != nil {
		if err := journal(u); err != nil {
			if rerr := s.unregisterUpdate(u, prev, hadPrev); rerr != nil {
				return fmt.Errorf("pisa: journal PU update: %w (rollback rebuild also failed: %v)", err, rerr)
			}
			return fmt.Errorf("pisa: journal PU update: %w", err)
		}
	}
	return s.rebuildColumn(u.Block)
}

// unregisterUpdate reverts a registration whose WAL append failed, so
// in-memory state never runs ahead of the log: the previous update (or
// absence) is restored and the column is rebuilt in case a concurrent
// rebuild already folded the rejected ciphertexts in. A newer update
// from the same PU that registered meanwhile is left in place — its own
// journal/rebuild path governs it.
func (s *SDC) unregisterUpdate(u, prev *PUUpdate, hadPrev bool) error {
	s.mu.Lock()
	if s.puUpdates[u.PUID] != u {
		s.mu.Unlock()
		return nil
	}
	if hadPrev {
		s.puUpdates[u.PUID] = prev
	} else {
		delete(s.puUpdates, u.PUID)
		delete(s.puBlocks, u.PUID)
	}
	s.colVer[u.Block]++
	s.mu.Unlock()
	return s.rebuildColumn(u.Block)
}

// validateUpdate performs the stateless admission checks shared by the
// live update path and recovery replay.
func (s *SDC) validateUpdate(u *PUUpdate) error {
	if u == nil {
		return fmt.Errorf("pisa: nil PU update")
	}
	if u.PUID == "" {
		return fmt.Errorf("pisa: PU update missing id")
	}
	if !s.params.Watch.Grid.Valid(u.Block) {
		return fmt.Errorf("pisa: PU update block %d invalid", u.Block)
	}
	if len(u.Cts) != s.params.Watch.Channels {
		return fmt.Errorf("pisa: PU update has %d ciphertexts, want C=%d",
			len(u.Cts), s.params.Watch.Channels)
	}
	for c, ct := range u.Cts {
		if ct == nil || ct.C == nil {
			return fmt.Errorf("pisa: PU update ciphertext %d is nil", c)
		}
	}
	return nil
}

// SetUpdateJournal attaches (or replaces) the write-ahead hook after
// construction. A durable daemon arms it only after recovery replay,
// so replayed updates are not appended to the log a second time.
func (s *SDC) SetUpdateJournal(fn func(*PUUpdate) error) {
	s.mu.Lock()
	s.journal = fn
	s.mu.Unlock()
}

// rebuildColumn recomputes N~(:, b) from a fresh encryption of the
// public E column plus every stored W~ column at block b. Only the
// snapshot and the write-back hold s.mu; the C encryptions and
// homomorphic folds run on the worker pool. If a concurrent update
// registered at the same block while we were computing (detected via
// the column version), the stale column is discarded and recomputed
// from a fresh snapshot.
func (s *SDC) rebuildColumn(b geo.BlockID) error {
	if s.codec != nil {
		return s.rebuildGroup(int(b) / s.codec.Slots())
	}
	m := metrics()
	for {
		passStart := time.Now()
		s.mu.Lock()
		ver := s.colVer[b]
		// Ciphertexts are immutable once stored, so snapshotting the
		// slice pointers is enough.
		var updates []*PUUpdate
		for _, u := range s.puUpdates {
			if u.Block == b {
				updates = append(updates, u)
			}
		}
		s.mu.Unlock()

		// Only the channel rows this instance owns are re-encrypted and
		// folded — a shard's rebuild work is 1/N of the monolithic pass.
		col := make([]*paillier.Ciphertext, s.chanHi-s.chanLo)
		err := parallel.For(s.workers, len(col), func(j int) error {
			c := s.chanLo + j
			ev, err := s.ePlain.At(c, int(b))
			if err != nil {
				return err
			}
			acc, err := s.group.Encrypt(s.random, big.NewInt(ev))
			if err != nil {
				return fmt.Errorf("pisa: encrypt E(%d, %d): %w", c, b, err)
			}
			for _, u := range updates {
				acc, err = s.group.Add(acc, u.Cts[c])
				if err != nil {
					return fmt.Errorf("pisa: fold update from %q: %w", u.PUID, err)
				}
			}
			col[j] = acc
			return nil
		})
		if err != nil {
			m.colRebuildErr.ObserveSince(passStart)
			return err
		}

		s.mu.Lock()
		if s.colVer[b] != ver {
			// A newer update landed while we computed; retry with a
			// fresh snapshot so its ciphertexts are folded in.
			s.mu.Unlock()
			m.colRebuildStale.ObserveSince(passStart)
			m.colRetries.Inc()
			continue
		}
		for j, ct := range col {
			if err := s.nEnc.Set(s.chanLo+j, int(b), ct); err != nil {
				s.mu.Unlock()
				m.colRebuildErr.ObserveSince(passStart)
				return err
			}
		}
		// Write-back committed: the stored content now reflects every
		// update registered up to ver. Cached decisions keyed on older
		// applied versions turn stale at their next lookup.
		s.colApplied[b] = ver
		s.mu.Unlock()
		m.colRebuildOK.ObserveSince(passStart)
		return nil
	}
}

// rebuildGroup is the packed counterpart of rebuildColumn: block b's
// budget shares its ciphertext with the other blocks of its slot
// group, so a rebuild recomputes the whole group column — a fresh
// packed encryption of the group's E slots (padding packs 1, the
// always-positive indicator) with every stored W~ column at any block
// of the group folded in at its slot via the shift scalar 2^(slot*W).
// The staleness check covers every block version in the group.
func (s *SDC) rebuildGroup(g int) error {
	m := metrics()
	k := s.codec.Slots()
	lo, hi := g*k, (g+1)*k
	if blocks := s.params.Watch.Grid.Blocks(); hi > blocks {
		hi = blocks
	}
	for {
		passStart := time.Now()
		s.mu.Lock()
		vers := make([]uint64, hi-lo)
		for b := lo; b < hi; b++ {
			vers[b-lo] = s.colVer[geo.BlockID(b)]
		}
		var updates []*PUUpdate
		for _, u := range s.puUpdates {
			if int(u.Block) >= lo && int(u.Block) < hi {
				updates = append(updates, u)
			}
		}
		s.mu.Unlock()

		col := make([]*paillier.Ciphertext, s.chanHi-s.chanLo)
		err := parallel.For(s.workers, len(col), func(j int) error {
			c := s.chanLo + j
			vals := make([]*big.Int, k)
			for j := range vals {
				if b := lo + j; b < hi {
					ev, err := s.ePlain.At(c, b)
					if err != nil {
						return err
					}
					vals[j] = big.NewInt(ev)
				} else {
					vals[j] = big.NewInt(1)
				}
			}
			acc, err := s.group.PackEncrypt(s.random, s.codec, vals)
			if err != nil {
				return fmt.Errorf("pisa: pack-encrypt E(%d, group %d): %w", c, g, err)
			}
			for _, u := range updates {
				shifted, err := s.group.ScalarMul(s.codec.ShiftScalar(int(u.Block)-lo), u.Cts[c])
				if err != nil {
					return fmt.Errorf("pisa: shift update from %q: %w", u.PUID, err)
				}
				if acc, err = s.group.Add(acc, shifted); err != nil {
					return fmt.Errorf("pisa: fold update from %q: %w", u.PUID, err)
				}
			}
			col[j] = acc
			return nil
		})
		if err != nil {
			m.colRebuildErr.ObserveSince(passStart)
			return err
		}

		s.mu.Lock()
		stale := false
		for b := lo; b < hi; b++ {
			if s.colVer[geo.BlockID(b)] != vers[b-lo] {
				stale = true
				break
			}
		}
		if stale {
			s.mu.Unlock()
			m.colRebuildStale.ObserveSince(passStart)
			m.colRetries.Inc()
			continue
		}
		for j, ct := range col {
			if err := s.nPack.SetGroup(s.chanLo+j, g, ct); err != nil {
				s.mu.Unlock()
				m.colRebuildErr.ObserveSince(passStart)
				return err
			}
		}
		// The whole group ciphertext was rebuilt, so every member
		// block's content is now at its snapshot version.
		for b := lo; b < hi; b++ {
			s.colApplied[geo.BlockID(b)] = vers[b-lo]
		}
		s.mu.Unlock()
		m.colRebuildOK.ObserveSince(passStart)
		return nil
	}
}

// requestCell tracks one request element through the blinded sign
// test: the request ciphertext, the budget snapshot, and the blinding
// tuple (popped from the pool or generated on the fly). In unpacked
// mode an element is one (channel, block) cell; in packed mode it is
// one (channel, group) ciphertext carrying k block slots.
type requestCell struct {
	c, b int
	f, n *paillier.Ciphertext
	bf   blindFactors
}

// footprintVersLocked returns the distinct budget blocks a request's
// cells read — packed groups expanded to their member blocks — with
// their current applied-content versions, in the deterministic cell
// enumeration order. Caller holds s.mu.
func (s *SDC) footprintVersLocked(cells []requestCell) ([]geo.BlockID, []uint64) {
	total := s.params.Watch.Grid.Blocks()
	seen := make(map[int]bool)
	var blocks []geo.BlockID
	add := func(b int) {
		if !seen[b] {
			seen[b] = true
			blocks = append(blocks, geo.BlockID(b))
		}
	}
	if s.codec != nil {
		k := s.codec.Slots()
		for i := range cells {
			g := cells[i].b
			for b := g * k; b < (g+1)*k && b < total; b++ {
				add(b)
			}
		}
	} else {
		for i := range cells {
			add(cells[i].b)
		}
	}
	vers := make([]uint64, len(blocks))
	for i, b := range blocks {
		vers[i] = s.colApplied[b]
	}
	return blocks, vers
}

// cacheKeyFor derives the decision-cache key for a request: the shape
// digest bound to its sharing scope — the requester's declared cache
// domain when the operator registered one, the requester's own SUID
// otherwise. Under the default per-SU scope a dishonest digest can
// only address (and so only poison) the sender's own entries; sharing
// across SUs requires the explicit CacheDomains trust declaration.
func (s *SDC) cacheKeyFor(suid string, digest [32]byte) [32]byte {
	if domain, ok := s.cacheDomain[suid]; ok {
		return scopedCacheKey(cacheScopeDomain, domain, digest)
	}
	return scopedCacheKey(cacheScopePerSU, suid, digest)
}

// entryFreshLocked decides whether a cached aggregate column can serve
// the request whose cells and current footprint versions are given,
// distinguishing an age-based rejection (expired — the optional TTL
// ran out) from a content-based one (the footprint shape or versions
// moved) so the two invalidation causes stay separately countable.
// The coords comparison is positional: the entry's ciphertexts must
// align one-to-one with the cells the blinding stage will walk, so a
// digest collision (or a scope member reusing another shape's digest)
// degrades to a miss instead of misaligning Ĩ against blinding
// factors. vers was computed from these same cells, so coord equality
// implies the entry's block list matches too. Caller holds s.mu.
func (s *SDC) entryFreshLocked(e *cacheEntry, cells []requestCell, vers []uint64) (fresh, expired bool) {
	if s.cache.ttl > 0 && s.now().Sub(e.filled) > s.cache.ttl {
		return false, true
	}
	if len(e.coords) != len(cells) || len(e.vers) != len(vers) {
		return false, false
	}
	for i := range cells {
		if e.coords[i].c != cells[i].c || e.coords[i].b != cells[i].b {
			return false, false
		}
	}
	for i := range vers {
		if e.vers[i] != vers[i] {
			return false, false
		}
	}
	return true, false
}

// PrecomputeCacheNonces extends the pool of re-randomisation factors
// the cache hit path consumes (one per served ciphertext). A dry pool
// falls back to online nonce generation; benchmarks pre-fill so the
// hit path measures the pooled regime.
func (s *SDC) PrecomputeCacheNonces(count int) error {
	if s.cacheNonces == nil {
		return fmt.Errorf("pisa: decision cache disabled")
	}
	return s.cacheNonces.Fill(count)
}

// cacheCounters are the per-instance mirrors of the obs cache
// counters, maintained lock-free next to each obs increment.
type cacheCounters struct {
	hits, misses, stale, expired, bypass, evicted atomic.Uint64
}

// CacheCounters is a point-in-time snapshot of one SDC instance's
// decision-cache activity.
type CacheCounters struct {
	Hits, Misses, Stale, Expired, Bypass, Evicted uint64
}

// CacheStats returns this instance's decision-cache counters since
// construction. Unlike the obs registry, which aggregates every SDC
// in the process, these are per instance — a sharded sdcd reports one
// shutdown-summary line per shard from them.
func (s *SDC) CacheStats() CacheCounters {
	return CacheCounters{
		Hits:    s.cacheCtr.hits.Load(),
		Misses:  s.cacheCtr.misses.Load(),
		Stale:   s.cacheCtr.stale.Load(),
		Expired: s.cacheCtr.expired.Load(),
		Bypass:  s.cacheCtr.bypass.Load(),
		Evicted: s.cacheCtr.evicted.Load(),
	}
}

// CachedDecisions reports the live entry count of the encrypted
// decision cache (0 when disabled).
func (s *SDC) CachedDecisions() int {
	if s.cache == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.len()
}

// ProcessRequest executes Figure 5 steps 3-11 for one SU request and
// returns the response to forward to the SU. The SDC cannot tell from
// anything it computes whether the request was granted.
//
// The critical section is the snapshot only: the per-cell homomorphic
// work (eqs. 11, 12, 14), the STP round-trip, and the unblinding
// (eq. 16) all run without holding s.mu, so concurrent SU requests
// genuinely overlap.
//
// Every stage reports its latency into the shared obs registry
// (pisa_sdc_request_stage_seconds; see metrics.go for the stage
// vocabulary), which is how a live deployment sees the paper's §VI
// per-stage budget instead of re-running a benchmark.
//
// A windowed instance (WithChannelWindow) refuses this path: its
// partial sum covers only its own channel rows, so a license masked
// with it would encode a window-local decision, not the whole-matrix
// one. Shards serve ProcessShard; the router issues the license.
func (s *SDC) ProcessRequest(req *TransmissionRequest) (resp *Response, err error) {
	m := metrics()
	m.requests.Inc()
	start := time.Now()
	defer func() {
		m.stage["total"].ObserveSince(start)
		if err != nil {
			m.requestErrors.Inc()
		}
	}()
	if s.windowed() {
		return nil, fmt.Errorf("pisa: shard owns channels [%d, %d) only; SU requests must go through the shard router",
			s.chanLo, s.chanHi)
	}
	sumQ, slots, suKey, err := s.processCore(req)
	if err != nil {
		return nil, err
	}
	// Grant-condition offset: sum(Q) = sum(eps*X) - count, so sum(Q)
	// decrypts to 0 exactly when every slot test passed.
	sumQ, err = suKey.AddPlain(sumQ, big.NewInt(-slots))
	if err != nil {
		return nil, fmt.Errorf("pisa: offset Q sum: %w", err)
	}

	// Steps 10-11: sign the license, encrypt under the SU key, mask
	// with eta (x) sum(Q~) (eq. 17).
	stageStart := time.Now()
	digest, err := req.Digest()
	if err != nil {
		return nil, err
	}
	now := s.now()
	s.mu.Lock()
	s.serial++
	serial := s.serial
	s.mu.Unlock()
	lic := dsig.License{
		SUID:          req.SUID,
		Issuer:        s.issuer,
		Serial:        serial,
		IssuedUnix:    now.Unix(),
		ExpiresUnix:   now.Add(s.licTTL).Unix(),
		RequestDigest: digest,
	}
	resp, err = MaskedLicense(s.random, s.signer, suKey, &lic, sumQ, s.params.EtaBits)
	if err != nil {
		return nil, err
	}
	m.stage["license_mask"].ObserveSince(stageStart)
	return resp, nil
}

// MaskedLicense performs Figure 5 steps 10-11 on an already-built
// license: sign it, encrypt the signature under the SU key, and mask
// with eta (x) sumQ (eq. 17), so the SU recovers the signature iff
// sumQ decrypts to 0. sumQ must already carry the grant-condition
// offset. Shared by the monolithic ProcessRequest and the shard
// router, which masks the merged cross-shard sum with its own signer.
func MaskedLicense(random io.Reader, signer *dsig.Signer, suKey *paillier.PublicKey,
	lic *dsig.License, sumQ *paillier.Ciphertext, etaBits int) (*Response, error) {
	sig, err := signer.Sign(lic)
	if err != nil {
		return nil, err
	}
	sigEnc, err := suKey.Encrypt(random, dsig.SignatureToInt(sig))
	if err != nil {
		return nil, fmt.Errorf("pisa: encrypt signature: %w", err)
	}
	etaLo := new(big.Int).Lsh(big.NewInt(1), uint(etaBits-1))
	etaHi := new(big.Int).Lsh(big.NewInt(1), uint(etaBits))
	eta, err := paillier.RandomInRange(random, etaLo, etaHi)
	if err != nil {
		return nil, err
	}
	mask, err := suKey.ScalarMul(eta, sumQ)
	if err != nil {
		return nil, fmt.Errorf("pisa: mask term: %w", err)
	}
	masked, err := suKey.Add(sigEnc, mask)
	if err != nil {
		return nil, fmt.Errorf("pisa: mask signature: %w", err)
	}
	return &Response{License: *lic, MaskedSig: masked}, nil
}

// ProcessShard executes the per-shard half of a sharded SU request
// (DESIGN.md §15): the same snapshot/cache/aggregate/blind/STP/unblind
// pipeline as ProcessRequest, restricted to the channel rows this
// instance owns and stopping short of the grant offset and the
// license. The answer carries the shard's partial sum(eps*X) under the
// SU key plus the number of slot tests folded in; eq. 17's sum is
// linear in the per-channel terms, so the router composes the partials
// with plain Paillier addition and issues the single masked license.
// No serial is consumed and nothing is issued, so a retried or
// failed-over call is idempotent. Callable on a monolithic instance
// too, where the window covers every row.
func (s *SDC) ProcessShard(req *TransmissionRequest) (ans *ShardAnswer, err error) {
	m := metrics()
	m.requests.Inc()
	start := time.Now()
	defer func() {
		m.stage["total"].ObserveSince(start)
		if err != nil {
			m.requestErrors.Inc()
		}
	}()
	sumQ, slots, _, err := s.processCore(req)
	if err != nil {
		return nil, err
	}
	return &ShardAnswer{SumQ: sumQ, Slots: slots}, nil
}

// processCore runs Figure 5 steps 3-9 over the channel rows this
// instance owns: validation, budget snapshot + cache lookup,
// aggregation (eqs. 11-12), blinding (eq. 14), the STP sign test, and
// the eps unblinding fold (eq. 16) — everything up to, but not
// including, the grant-condition offset. It returns the partial
// sum(eps*X) under the SU key and the number of slot tests folded in;
// slots == 0 with a nil sum when no populated request cell falls
// inside the window (the request was sliced for a different shard).
func (s *SDC) processCore(req *TransmissionRequest) (sumQ *paillier.Ciphertext, slots int64, suKey *paillier.PublicKey, err error) {
	m := metrics()
	if req == nil || (req.F == nil && req.FP == nil) {
		return nil, 0, nil, fmt.Errorf("pisa: nil request")
	}
	if req.SUID == "" {
		return nil, 0, nil, fmt.Errorf("pisa: request missing SU id")
	}
	w := s.params.Watch
	if s.codec != nil {
		// Packed deployment: the request must arrive packed under the
		// same slot geometry (mode is a deployment parameter; the
		// -packing flag must agree on both sides).
		if req.FP == nil {
			return nil, 0, nil, fmt.Errorf("pisa: packed deployment requires a packed request")
		}
		if req.FP.Channels() != w.Channels || req.FP.Blocks() != w.Grid.Blocks() {
			return nil, 0, nil, fmt.Errorf("pisa: request matrix %dx%d, want %dx%d",
				req.FP.Channels(), req.FP.Blocks(), w.Channels, w.Grid.Blocks())
		}
		if !req.FP.Codec().Equal(s.codec) {
			return nil, 0, nil, fmt.Errorf("pisa: request slot codec does not match the deployment")
		}
		if !req.FP.Key().Equal(s.group) {
			return nil, 0, nil, fmt.Errorf("pisa: request not encrypted under the group key")
		}
		if req.FP.Populated() == 0 {
			return nil, 0, nil, fmt.Errorf("pisa: request matrix is empty")
		}
	} else {
		if req.F == nil {
			return nil, 0, nil, fmt.Errorf("pisa: unpacked deployment cannot process a packed request")
		}
		if req.F.Channels() != w.Channels || req.F.Blocks() != w.Grid.Blocks() {
			return nil, 0, nil, fmt.Errorf("pisa: request matrix %dx%d, want %dx%d",
				req.F.Channels(), req.F.Blocks(), w.Channels, w.Grid.Blocks())
		}
		if !req.F.Key().Equal(s.group) {
			return nil, 0, nil, fmt.Errorf("pisa: request not encrypted under the group key")
		}
		if req.F.Populated() == 0 {
			return nil, 0, nil, fmt.Errorf("pisa: request matrix is empty")
		}
	}
	suKey, err = s.stp.SUKey(req.SUID)
	if err != nil {
		return nil, 0, nil, err
	}

	// Snapshot phase (the only part under s.mu): collect the budget
	// entries for every populated request cell and pop as many pooled
	// blinding tuples as available, newest first — the same
	// consumption order as the pre-parallel per-cell pops.
	stageStart := time.Now()
	s.mu.Lock()
	if s.blindErrPending {
		// A background refill failed since the last request: surface
		// it to exactly one caller. The sticky copy stays readable via
		// BlindingRefillErr (and the disarm via
		// BlindingAutoRefillArmed) until the pool is re-armed.
		s.blindErrPending = false
		err := s.blindErr
		s.mu.Unlock()
		return nil, 0, nil, fmt.Errorf("pisa: background blinding refill: %w", err)
	}
	cells := make([]requestCell, 0, req.Ciphertexts())
	take := func(c, b int, f, n *paillier.Ciphertext) {
		cell := requestCell{c: c, b: b, f: f, n: n}
		if last := len(s.blindPool) - 1; last >= 0 {
			cell.bf = s.blindPool[last]
			s.blindPool[last] = blindFactors{}
			s.blindPool = s.blindPool[:last]
		}
		cells = append(cells, cell)
	}
	// Request cells outside the owned window are someone else's rows:
	// a full (unsliced) request to a shard simply contributes nothing
	// from them, which is what makes full fan-out broadcasts correct.
	if s.codec != nil {
		err = req.FP.ForEachGroup(func(c, g int, f *paillier.Ciphertext) error {
			if c < s.chanLo || c >= s.chanHi {
				return nil
			}
			n, err := s.nPack.GroupAt(c, g)
			if err != nil {
				return err
			}
			take(c, g, f, n)
			return nil
		})
	} else {
		err = req.F.ForEach(func(c, b int, f *paillier.Ciphertext) error {
			if c < s.chanLo || c >= s.chanHi {
				return nil
			}
			n, err := s.nEnc.At(c, b)
			if err != nil {
				return err
			}
			take(c, b, f, n)
			return nil
		})
	}
	// Cache lookup happens in the same critical section as the budget
	// snapshot: the colApplied vector read here identifies exactly the
	// content the `n` pointers above reference, so a version-matched
	// entry equals what the recompute below would produce. Entries are
	// addressed by the digest bound to the requester's sharing scope
	// (cacheKeyFor), never by the raw digest alone.
	var (
		cacheHit *cacheEntry
		cachePut *cacheEntry
	)
	if err == nil && s.cache != nil && len(cells) > 0 {
		switch {
		case req.ShapeDigest == [32]byte{}:
			m.cacheBypass.Inc()
			s.cacheCtr.bypass.Add(1)
		default:
			key := s.cacheKeyFor(req.SUID, req.ShapeDigest)
			blocks, vers := s.footprintVersLocked(cells)
			if e := s.cache.get(key); e != nil {
				fresh, expired := s.entryFreshLocked(e, cells, vers)
				switch {
				case fresh:
					cacheHit = e
				case expired:
					s.cache.remove(key)
					m.cacheExpired.Inc()
					s.cacheCtr.expired.Add(1)
				default:
					s.cache.remove(key)
					m.cacheStale.Inc()
					s.cacheCtr.stale.Add(1)
				}
			} else {
				m.cacheMisses.Inc()
				s.cacheCtr.misses.Add(1)
			}
			if cacheHit == nil {
				coords := make([]cellCoord, len(cells))
				for i := range cells {
					coords[i] = cellCoord{c: cells[i].c, b: cells[i].b}
				}
				cachePut = &cacheEntry{
					key:    key,
					coords: coords,
					blocks: blocks,
					vers:   vers,
				}
			}
			m.cacheEntries.Set(int64(s.cache.len()))
		}
	}
	if err == nil {
		s.maybeRefillBlindingLocked()
	}
	m.blindDepth.Set(int64(len(s.blindPool)))
	s.mu.Unlock()
	if err != nil {
		return nil, 0, nil, err
	}
	m.stage["snapshot"].ObserveSince(stageStart)
	if len(cells) == 0 {
		// Every populated cell belongs to another shard's window:
		// nothing to aggregate, no STP round trip. The router treats a
		// nil partial as the additive identity.
		return nil, 0, suKey, nil
	}

	// Steps 3-4: R~ = X (x) F~, I~ = N~ (-) R~ (eqs. 11-12) — the
	// budget aggregation. A cache hit replaces the recompute with one
	// re-randomisation per ciphertext: the served column decrypts
	// identically but is unlinkable to the stored entry and to any
	// other serving of it (fresh r^n per ciphertext, PR-4 fast path).
	stageStart = time.Now()
	var is []*paillier.Ciphertext
	if cacheHit != nil {
		if is, err = s.cacheNonces.RerandomizeBatch(cacheHit.is); err != nil {
			return nil, 0, nil, fmt.Errorf("pisa: re-randomise cached aggregate: %w", err)
		}
		m.cacheHits.Inc()
		s.cacheCtr.hits.Add(1)
		m.cacheAggHit.ObserveSince(stageStart)
	} else {
		deltaX := big.NewInt(w.DeltaInt)
		is = make([]*paillier.Ciphertext, len(cells))
		err = parallel.For(s.workers, len(cells), func(k int) error {
			cell := &cells[k]
			r, err := s.group.ScalarMul(deltaX, cell.f) // eq. 11
			if err != nil {
				return fmt.Errorf("scale F(%d, %d): %w", cell.c, cell.b, err)
			}
			i, err := s.group.Sub(cell.n, r) // eq. 12
			if err != nil {
				return fmt.Errorf("budget at (%d, %d): %w", cell.c, cell.b, err)
			}
			is[k] = i
			return nil
		})
		if err != nil {
			return nil, 0, nil, err
		}
		if cachePut != nil {
			// The cached copy is the freshly computed column; the hit
			// path re-randomises before serving, so storing it verbatim
			// links it to nothing the SDC ever emits. The version vector
			// was captured under the same lock as the budget snapshot —
			// a rebuild that committed since then changed colApplied and
			// simply makes this entry stale at its first lookup.
			cachePut.is = is
			cachePut.filled = s.now()
			s.mu.Lock()
			evicted := s.cache.put(cachePut)
			m.cacheEntries.Set(int64(s.cache.len()))
			s.mu.Unlock()
			for ; evicted > 0; evicted-- {
				m.cacheEvicts.Inc()
				s.cacheCtr.evicted.Add(1)
			}
		}
		if cachePut != nil {
			// Only digest-carrying recomputes feed the path="miss"
			// histogram: bypass (zero-digest) requests recompute too, but
			// folding them in would skew the hit-vs-miss cost comparison
			// whenever opt-out/legacy SUs share the deployment.
			m.cacheAggMiss.ObserveSince(stageStart)
		}
	}
	m.stage["aggregate"].ObserveSince(stageStart)

	// Step 5: blind into V~ (eq. 14). Cells without a pooled tuple
	// generate blinding factors on the fly (one extra encryption,
	// counted as a pool fallback).
	stageStart = time.Now()
	vs := make([]*paillier.Ciphertext, len(cells))
	err = parallel.For(s.workers, len(cells), func(k int) error {
		cell := &cells[k]
		if cell.bf.alpha == nil {
			m.blindFallbacks.Inc()
			bf, err := s.newBlindFactors()
			if err != nil {
				return fmt.Errorf("blind (%d, %d): %w", cell.c, cell.b, err)
			}
			cell.bf = bf
		}
		v, err := s.blindWith(is[k], cell.bf) // eq. 14
		if err != nil {
			return fmt.Errorf("blind (%d, %d): %w", cell.c, cell.b, err)
		}
		vs[k] = v
		return nil
	})
	if err != nil {
		return nil, 0, nil, err
	}
	m.stage["blind"].ObserveSince(stageStart)

	// Steps 6-8 happen at the STP. Packed requests declare their slot
	// geometry so the STP runs the sign test slot-wise and returns one
	// sign-sum ciphertext per group.
	stageStart = time.Now()
	signReq := &SignRequest{SUID: req.SUID, V: vs}
	if s.codec != nil {
		signReq.Packed = true
		signReq.Slots = s.codec.Slots()
		signReq.SlotBits = s.codec.SlotBits()
	}
	signResp, err := s.convert(signReq)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("pisa: STP conversion: %w", err)
	}
	if len(signResp.X) != len(cells) {
		return nil, 0, nil, fmt.Errorf("pisa: STP returned %d signs, want %d", len(signResp.X), len(cells))
	}
	m.stage["stp_convert"].ObserveSince(stageStart)

	// Step 9's unblinding half: Q~ = eps (x) X~ under the SU key
	// (eq. 16, offset deferred to the caller). The epsilon scalar-muls
	// are independent and fan out; the final sum is a cheap
	// modular-multiplication fold (commutative, so the fold order
	// cannot change the result). In packed mode every element carries
	// k slot tests (padding slots always pass), so the count handed
	// back is cells x slots and the grant condition sum(Q) == 0 is
	// unchanged.
	stageStart = time.Now()
	unblinded := make([]*paillier.Ciphertext, len(cells))
	err = parallel.For(s.workers, len(cells), func(k int) error {
		u, err := suKey.ScalarMul(big.NewInt(cells[k].bf.eps), signResp.X[k])
		if err != nil {
			return fmt.Errorf("pisa: unblind sign %d: %w", k, err)
		}
		unblinded[k] = u
		return nil
	})
	if err != nil {
		return nil, 0, nil, err
	}
	for _, u := range unblinded {
		if sumQ == nil {
			sumQ = u
			continue
		}
		if sumQ, err = suKey.Add(sumQ, u); err != nil {
			return nil, 0, nil, fmt.Errorf("pisa: accumulate Q: %w", err)
		}
	}
	slotsPer := 1
	if s.codec != nil {
		slotsPer = s.codec.Slots()
	}
	m.stage["unblind"].ObserveSince(stageStart)
	return sumQ, int64(len(cells) * slotsPer), suKey, nil
}

// newBlindFactors draws one (alpha, E(beta), epsilon) tuple — a
// single-element batch, so pooled precomputation, background refills
// and the on-the-fly ProcessRequest fallback all share exactly one
// generation path (and the fixed-base fast path behind the beta
// encryption is exercised in one place). A one-element batch runs
// inline on the calling goroutine.
func (s *SDC) newBlindFactors() (blindFactors, error) {
	fresh, err := s.newBlindFactorsBatch(1)
	if err != nil {
		return blindFactors{}, err
	}
	return fresh[0], nil
}

// newBlindFactorsBatch generates count (alpha, E(beta), epsilon)
// tuples — the offline-precomputable part of eq. 14 — on the worker
// pool. Safe for concurrent use (the randomness source is
// shared-reader wrapped at construction).
//
// In packed mode one tuple blinds one group ciphertext: alpha and
// epsilon are shared across the group's slots (alpha*I keeps every
// slot inside its width; the shared epsilon leaks only the group's
// relative sign pattern to the STP, see DESIGN.md §12), while beta is
// drawn fresh per slot and the tuple's betaEnc is a packed encryption
// of the k betas.
func (s *SDC) newBlindFactorsBatch(count int) ([]blindFactors, error) {
	alphaLo := new(big.Int).Lsh(big.NewInt(1), uint(s.params.AlphaBits-1))
	alphaHi := new(big.Int).Lsh(big.NewInt(1), uint(s.params.AlphaBits))
	betaHi := new(big.Int).Lsh(big.NewInt(1), uint(s.params.BetaBits))
	fresh := make([]blindFactors, count)
	err := parallel.For(s.workers, count, func(i int) error {
		alpha, err := paillier.RandomInRange(s.random, alphaLo, alphaHi)
		if err != nil {
			return err
		}
		var betaEnc *paillier.Ciphertext
		if s.codec != nil {
			betas := make([]*big.Int, s.codec.Slots())
			for j := range betas {
				if betas[j], err = paillier.RandomInRange(s.random, big.NewInt(1), betaHi); err != nil {
					return err
				}
			}
			if betaEnc, err = s.group.PackEncrypt(s.random, s.betaCodec, betas); err != nil {
				return err
			}
		} else {
			beta, err := paillier.RandomInRange(s.random, big.NewInt(1), betaHi)
			if err != nil {
				return err
			}
			if betaEnc, err = s.group.Encrypt(s.random, beta); err != nil {
				return err
			}
		}
		epsBit := make([]byte, 1)
		if _, err := io.ReadFull(s.random, epsBit); err != nil {
			return fmt.Errorf("draw epsilon: %w", err)
		}
		eps := int64(1)
		if epsBit[0]&1 == 1 {
			eps = -1
		}
		fresh[i] = blindFactors{alpha: alpha, betaEnc: betaEnc, eps: eps}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fresh, nil
}

// PrecomputeBlinding extends the offline pool of blinding tuples.
// Each processed matrix cell consumes one tuple; a dry pool falls
// back to on-the-fly generation (one extra encryption per cell).
func (s *SDC) PrecomputeBlinding(count int) error {
	if count < 0 {
		return fmt.Errorf("pisa: negative blinding count %d", count)
	}
	fresh, err := s.newBlindFactorsBatch(count)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.blindPool = append(s.blindPool, fresh...)
	metrics().blindDepth.Set(int64(len(s.blindPool)))
	s.mu.Unlock()
	return nil
}

// EnableBlindingAutoRefill arms (target > 0) or disarms (target == 0)
// background refilling of the blinding pool: whenever request
// processing leaves fewer than target/4 (at least 1) tuples, a
// background goroutine tops the pool back up to target instead of
// letting later requests fall back to online generation.
//
// A refill failure explicitly disarms auto-refill (the pool keeps
// serving via online fallback): the failure is logged, counted in the
// obs registry, surfaced by one ProcessRequest error, and held by
// BlindingRefillErr until this method re-arms the pool — which also
// clears the sticky error. The same semantics govern
// paillier.NoncePool.
func (s *SDC) EnableBlindingAutoRefill(target int) error {
	if target < 0 {
		return fmt.Errorf("pisa: negative blinding target %d", target)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.blindClosed {
		return fmt.Errorf("pisa: SDC closed")
	}
	s.blindTarget = target
	s.blindLow = target / 4
	if s.blindLow < 1 {
		s.blindLow = 1
	}
	s.blindErr = nil
	s.blindErrPending = false
	return nil
}

// BlindingAutoRefillArmed reports whether background refilling is
// currently armed. A pool that was armed but reports false here hit a
// refill failure (see BlindingRefillErr) or was explicitly disarmed.
func (s *SDC) BlindingAutoRefillArmed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blindTarget > 0
}

// BlindingRefillErr returns the last background refill failure, or
// nil. The error is sticky: it stays readable until
// EnableBlindingAutoRefill re-arms the pool, so callers beyond the
// one ProcessRequest that surfaced it can still see the pool is
// degraded.
func (s *SDC) BlindingRefillErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blindErr
}

// maybeRefillBlindingLocked starts one background refill when armed
// and below the low-water mark. Caller holds s.mu.
func (s *SDC) maybeRefillBlindingLocked() {
	if s.blindClosed || s.blindTarget == 0 || s.blindRefilling || len(s.blindPool) >= s.blindLow {
		return
	}
	need := s.blindTarget - len(s.blindPool)
	s.blindRefilling = true
	s.blindWG.Add(1)
	go func() {
		defer s.blindWG.Done()
		m := metrics()
		fresh, err := s.newBlindFactorsBatch(need)
		s.mu.Lock()
		s.blindRefilling = false
		if err != nil {
			// Explicit disarm: the sticky error and the armed flag
			// stay observable until EnableBlindingAutoRefill re-arms.
			s.blindErr = err
			s.blindErrPending = true
			s.blindTarget = 0
			m.blindRefillErr.Inc()
			slog.Warn("pisa: background blinding refill failed; auto-refill disarmed",
				"err", err, "pooled", len(s.blindPool))
		} else {
			s.blindPool = append(s.blindPool, fresh...)
			m.blindRefills.Inc()
			m.blindDepth.Set(int64(len(s.blindPool)))
		}
		s.mu.Unlock()
	}()
}

// WaitBlindingRefill blocks until any in-flight background refill
// finishes — deterministic accounting for tests and shutdown.
func (s *SDC) WaitBlindingRefill() {
	s.blindWG.Wait()
}

// Close disarms blinding auto-refill and waits for any in-flight
// background refill goroutine to exit, drains the STP coalescing
// batcher (queued sign tests are handed back to their callers, who
// retry with a direct round trip), and retires the cache's nonce
// pool — so a retired SDC leaks no goroutines and strands no waiter
// inside an open coalescing window. Request and update processing
// keep working after Close (cells fall back to on-the-fly blinding,
// sign tests go direct, cache hits generate nonces online); only the
// background machinery stops. Safe to call more than once.
func (s *SDC) Close() {
	s.mu.Lock()
	s.blindClosed = true
	s.blindTarget = 0
	s.mu.Unlock()
	s.blindWG.Wait()
	if s.batcher != nil {
		s.batcher.close()
	}
	if s.cacheNonces != nil {
		s.cacheNonces.Close()
	}
}

// PooledBlinding reports the remaining precomputed blinding tuples.
func (s *SDC) PooledBlinding() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blindPool)
}

// blindWith applies eq. 14 to one encrypted budget slack I~ using the
// supplied tuple: one-time alpha > beta > 0 hide the magnitude,
// epsilon in {-1, +1} hides the sign from the STP. Pure function of
// its inputs — callable concurrently.
func (s *SDC) blindWith(i *paillier.Ciphertext, bf blindFactors) (*paillier.Ciphertext, error) {
	scaled, err := s.group.ScalarMul(bf.alpha, i)
	if err != nil {
		return nil, err
	}
	diff, err := s.group.Sub(scaled, bf.betaEnc)
	if err != nil {
		return nil, err
	}
	return s.group.ScalarMul(big.NewInt(bf.eps), diff)
}
