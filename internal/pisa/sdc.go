package pisa

import (
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	"io"
	"math/big"
	"sync"
	"time"

	"pisa/internal/dsig"
	"pisa/internal/geo"
	"pisa/internal/matrix"
	"pisa/internal/paillier"
	"pisa/internal/watch"
)

// SDC is the spectrum database controller. It keeps the interference
// budget matrix N~ only in encrypted form and processes PU updates
// (eqs. 8-10) and SU requests (eqs. 11-17) homomorphically. The SDC
// never holds the group secret key, so it learns neither the PU
// channel receptions, nor the SU parameters, nor the decisions.
type SDC struct {
	params Params
	issuer string
	group  *paillier.PublicKey
	stp    STPService
	signer *dsig.Signer
	public *watch.System // public-data precomputation only: E, d^c
	ePlain *matrix.Int   // plaintext E (public)
	random io.Reader
	now    func() time.Time
	licTTL time.Duration

	mu        sync.Mutex
	nEnc      *matrix.Enc                // N~: encrypted budgets
	puUpdates map[watch.PUID]*PUUpdate   // latest update per PU
	puBlocks  map[watch.PUID]geo.BlockID // fixed registered locations
	serial    uint64
	blindPool []blindFactors // offline-precomputed blinding tuples
}

// blindFactors is one precomputed (alpha, E(beta), epsilon) tuple for
// eq. 14. The beta encryption is the expensive part; precomputing it
// offline is what keeps online request processing at homomorphic-op
// speed (the paper's 219 s figure counts only the online SDC work).
type blindFactors struct {
	alpha   *big.Int
	betaEnc *paillier.Ciphertext
	eps     int64
}

// SDCOption customises SDC construction.
type SDCOption interface {
	apply(*SDC)
}

type sdcOptionFunc func(*SDC)

func (f sdcOptionFunc) apply(s *SDC) { f(s) }

// WithClock injects a deterministic time source (tests).
func WithClock(now func() time.Time) SDCOption {
	return sdcOptionFunc(func(s *SDC) { s.now = now })
}

// WithLicenseTTL sets the license validity window (default 24h).
func WithLicenseTTL(ttl time.Duration) SDCOption {
	return sdcOptionFunc(func(s *SDC) { s.licTTL = ttl })
}

// WithRandom injects the randomness source (default crypto/rand).
func WithRandom(r io.Reader) SDCOption {
	return sdcOptionFunc(func(s *SDC) { s.random = r })
}

// NewSDC builds the controller: performs the plaintext initialisation
// step of §IV-A1 (E matrix and protection distances from public data
// only), generates the license-signing key, and encrypts the initial
// budget matrix N~ = E~ under the group key fetched from the STP.
func NewSDC(issuer string, params Params, transmitters []watch.TVTransmitter, stp STPService, opts ...SDCOption) (*SDC, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if stp == nil {
		return nil, fmt.Errorf("pisa: SDC requires an STP service")
	}
	public, err := watch.NewSystem(params.Watch, transmitters)
	if err != nil {
		return nil, fmt.Errorf("pisa: public precomputation: %w", err)
	}
	s := &SDC{
		params:    params,
		issuer:    issuer,
		group:     stp.GroupKey(),
		stp:       stp,
		public:    public,
		ePlain:    public.EMatrix(),
		random:    rand.Reader,
		now:       time.Now,
		licTTL:    24 * time.Hour,
		puUpdates: make(map[watch.PUID]*PUUpdate),
		puBlocks:  make(map[watch.PUID]geo.BlockID),
	}
	for _, opt := range opts {
		opt.apply(s)
	}
	s.signer, err = dsig.NewSigner(s.random, params.SignerBits)
	if err != nil {
		return nil, err
	}
	if s.nEnc, err = matrix.EncryptInt(s.random, s.group, s.ePlain); err != nil {
		return nil, fmt.Errorf("pisa: encrypt initial budgets: %w", err)
	}
	return s, nil
}

// VerifyKey returns the public key SUs use to check license
// signatures.
func (s *SDC) VerifyKey() *rsa.PublicKey { return s.signer.Public() }

// Planner returns the public-data planner (grid, d^c) for parties
// that need to build requests against this deployment.
func (s *SDC) Planner() *watch.Planner { return s.public.Planner() }

// EColumn returns the plaintext E column for a block — public data a
// PU needs to form its offset update W = T - E.
func (s *SDC) EColumn(b geo.BlockID) ([]int64, error) {
	if !s.params.Watch.Grid.Valid(b) {
		return nil, fmt.Errorf("pisa: block %d invalid", b)
	}
	col := make([]int64, s.params.Watch.Channels)
	for c := range col {
		v, err := s.ePlain.At(c, int(b))
		if err != nil {
			return nil, err
		}
		col[c] = v
	}
	return col, nil
}

// HandlePUUpdate ingests a channel-reception update (Figure 4 steps
// 4): stores the PU's latest W~ column and rebuilds the encrypted
// budget column N~(:, b) = E~(:, b) (+) sum of W~ columns at b
// (eqs. 9-10). The E column is re-encrypted fresh on every rebuild,
// matching the paper's measured update cost (about C encryptions plus
// C homomorphic additions, about 2.6 s at paper scale).
func (s *SDC) HandlePUUpdate(u *PUUpdate) error {
	if u == nil {
		return fmt.Errorf("pisa: nil PU update")
	}
	if u.PUID == "" {
		return fmt.Errorf("pisa: PU update missing id")
	}
	if !s.params.Watch.Grid.Valid(u.Block) {
		return fmt.Errorf("pisa: PU update block %d invalid", u.Block)
	}
	if len(u.Cts) != s.params.Watch.Channels {
		return fmt.Errorf("pisa: PU update has %d ciphertexts, want C=%d",
			len(u.Cts), s.params.Watch.Channels)
	}
	for c, ct := range u.Cts {
		if ct == nil || ct.C == nil {
			return fmt.Errorf("pisa: PU update ciphertext %d is nil", c)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.puBlocks[u.PUID]; ok && prev != u.Block {
		return fmt.Errorf("pisa: PU %q registered at block %d, update claims %d (TV receiver locations are fixed)",
			u.PUID, prev, u.Block)
	}
	s.puBlocks[u.PUID] = u.Block
	s.puUpdates[u.PUID] = u
	return s.rebuildColumnLocked(u.Block)
}

// rebuildColumnLocked recomputes N~(:, b) from a fresh encryption of
// the public E column plus every stored W~ column at block b.
func (s *SDC) rebuildColumnLocked(b geo.BlockID) error {
	channels := s.params.Watch.Channels
	for c := 0; c < channels; c++ {
		ev, err := s.ePlain.At(c, int(b))
		if err != nil {
			return err
		}
		acc, err := s.group.Encrypt(s.random, big.NewInt(ev))
		if err != nil {
			return fmt.Errorf("pisa: encrypt E(%d, %d): %w", c, b, err)
		}
		for id, u := range s.puUpdates {
			if u.Block != b {
				continue
			}
			acc, err = s.group.Add(acc, u.Cts[c])
			if err != nil {
				return fmt.Errorf("pisa: fold update from %q: %w", id, err)
			}
		}
		if err := s.nEnc.Set(c, int(b), acc); err != nil {
			return err
		}
	}
	return nil
}

// requestEntry tracks one (c, b) cell through the blinded sign test.
type requestEntry struct {
	c, b int
	eps  int64 // epsilon in {-1, +1}, secret to the SDC
}

// ProcessRequest executes Figure 5 steps 3-11 for one SU request and
// returns the response to forward to the SU. The SDC cannot tell from
// anything it computes whether the request was granted.
func (s *SDC) ProcessRequest(req *TransmissionRequest) (*Response, error) {
	if req == nil || req.F == nil {
		return nil, fmt.Errorf("pisa: nil request")
	}
	if req.SUID == "" {
		return nil, fmt.Errorf("pisa: request missing SU id")
	}
	w := s.params.Watch
	if req.F.Channels() != w.Channels || req.F.Blocks() != w.Grid.Blocks() {
		return nil, fmt.Errorf("pisa: request matrix %dx%d, want %dx%d",
			req.F.Channels(), req.F.Blocks(), w.Channels, w.Grid.Blocks())
	}
	if !req.F.Key().Equal(s.group) {
		return nil, fmt.Errorf("pisa: request not encrypted under the group key")
	}
	if req.F.Populated() == 0 {
		return nil, fmt.Errorf("pisa: request matrix is empty")
	}
	suKey, err := s.stp.SUKey(req.SUID)
	if err != nil {
		return nil, err
	}

	// Steps 3-5: R~ = X (x) F~, I~ = N~ (-) R~, blind into V~.
	deltaX := big.NewInt(w.DeltaInt)
	var (
		entries []requestEntry
		vs      []*paillier.Ciphertext
	)
	s.mu.Lock()
	err = req.F.ForEach(func(c, b int, f *paillier.Ciphertext) error {
		r, err := s.group.ScalarMul(deltaX, f) // eq. 11
		if err != nil {
			return fmt.Errorf("scale F(%d, %d): %w", c, b, err)
		}
		n, err := s.nEnc.At(c, b)
		if err != nil {
			return err
		}
		i, err := s.group.Sub(n, r) // eq. 12
		if err != nil {
			return fmt.Errorf("budget at (%d, %d): %w", c, b, err)
		}
		v, eps, err := s.blind(i) // eq. 14
		if err != nil {
			return fmt.Errorf("blind (%d, %d): %w", c, b, err)
		}
		entries = append(entries, requestEntry{c: c, b: b, eps: eps})
		vs = append(vs, v)
		return nil
	})
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}

	// Steps 6-8 happen at the STP.
	signResp, err := s.stp.ConvertSigns(&SignRequest{SUID: req.SUID, V: vs})
	if err != nil {
		return nil, fmt.Errorf("pisa: STP conversion: %w", err)
	}
	if len(signResp.X) != len(entries) {
		return nil, fmt.Errorf("pisa: STP returned %d signs, want %d", len(signResp.X), len(entries))
	}

	// Step 9: Q~ = eps (x) X~ (-) 1~ under the SU key (eq. 16).
	// Summed directly: sum(Q) = sum(eps*X) - count.
	var sumQ *paillier.Ciphertext
	for k, x := range signResp.X {
		unblinded, err := suKey.ScalarMul(big.NewInt(entries[k].eps), x)
		if err != nil {
			return nil, fmt.Errorf("pisa: unblind sign %d: %w", k, err)
		}
		if sumQ == nil {
			sumQ = unblinded
			continue
		}
		if sumQ, err = suKey.Add(sumQ, unblinded); err != nil {
			return nil, fmt.Errorf("pisa: accumulate Q: %w", err)
		}
	}
	sumQ, err = suKey.AddPlain(sumQ, big.NewInt(-int64(len(entries))))
	if err != nil {
		return nil, fmt.Errorf("pisa: offset Q sum: %w", err)
	}

	// Steps 10-11: sign the license, encrypt under the SU key, mask
	// with eta (x) sum(Q~) (eq. 17).
	digest, err := req.Digest()
	if err != nil {
		return nil, err
	}
	now := s.now()
	s.mu.Lock()
	s.serial++
	serial := s.serial
	s.mu.Unlock()
	lic := dsig.License{
		SUID:          req.SUID,
		Issuer:        s.issuer,
		Serial:        serial,
		IssuedUnix:    now.Unix(),
		ExpiresUnix:   now.Add(s.licTTL).Unix(),
		RequestDigest: digest,
	}
	sig, err := s.signer.Sign(&lic)
	if err != nil {
		return nil, err
	}
	sigEnc, err := suKey.Encrypt(s.random, dsig.SignatureToInt(sig))
	if err != nil {
		return nil, fmt.Errorf("pisa: encrypt signature: %w", err)
	}
	etaLo := new(big.Int).Lsh(big.NewInt(1), uint(s.params.EtaBits-1))
	etaHi := new(big.Int).Lsh(big.NewInt(1), uint(s.params.EtaBits))
	eta, err := paillier.RandomInRange(s.random, etaLo, etaHi)
	if err != nil {
		return nil, err
	}
	mask, err := suKey.ScalarMul(eta, sumQ)
	if err != nil {
		return nil, fmt.Errorf("pisa: mask term: %w", err)
	}
	masked, err := suKey.Add(sigEnc, mask)
	if err != nil {
		return nil, fmt.Errorf("pisa: mask signature: %w", err)
	}
	return &Response{License: lic, MaskedSig: masked}, nil
}

// newBlindFactors draws one (alpha, E(beta), epsilon) tuple — the
// offline-precomputable part of eq. 14.
func (s *SDC) newBlindFactors() (blindFactors, error) {
	alphaLo := new(big.Int).Lsh(big.NewInt(1), uint(s.params.AlphaBits-1))
	alphaHi := new(big.Int).Lsh(big.NewInt(1), uint(s.params.AlphaBits))
	alpha, err := paillier.RandomInRange(s.random, alphaLo, alphaHi)
	if err != nil {
		return blindFactors{}, err
	}
	betaHi := new(big.Int).Lsh(big.NewInt(1), uint(s.params.BetaBits))
	beta, err := paillier.RandomInRange(s.random, big.NewInt(1), betaHi)
	if err != nil {
		return blindFactors{}, err
	}
	betaEnc, err := s.group.Encrypt(s.random, beta)
	if err != nil {
		return blindFactors{}, err
	}
	epsBit := make([]byte, 1)
	if _, err := io.ReadFull(s.random, epsBit); err != nil {
		return blindFactors{}, fmt.Errorf("draw epsilon: %w", err)
	}
	eps := int64(1)
	if epsBit[0]&1 == 1 {
		eps = -1
	}
	return blindFactors{alpha: alpha, betaEnc: betaEnc, eps: eps}, nil
}

// PrecomputeBlinding extends the offline pool of blinding tuples.
// Each processed matrix cell consumes one tuple; a dry pool falls
// back to on-the-fly generation (one extra encryption per cell).
func (s *SDC) PrecomputeBlinding(count int) error {
	if count < 0 {
		return fmt.Errorf("pisa: negative blinding count %d", count)
	}
	fresh := make([]blindFactors, 0, count)
	for i := 0; i < count; i++ {
		bf, err := s.newBlindFactors()
		if err != nil {
			return err
		}
		fresh = append(fresh, bf)
	}
	s.mu.Lock()
	s.blindPool = append(s.blindPool, fresh...)
	s.mu.Unlock()
	return nil
}

// PooledBlinding reports the remaining precomputed blinding tuples.
func (s *SDC) PooledBlinding() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blindPool)
}

// blind applies eq. 14 to one encrypted budget slack I~: one-time
// alpha > beta > 0 hide the magnitude, epsilon in {-1, +1} hides the
// sign from the STP. Returns V~ and the epsilon needed to unblind the
// converted sign. Must be called with s.mu held (it may pop the
// blinding pool).
func (s *SDC) blind(i *paillier.Ciphertext) (*paillier.Ciphertext, int64, error) {
	var (
		bf  blindFactors
		err error
	)
	if n := len(s.blindPool); n > 0 {
		bf = s.blindPool[n-1]
		s.blindPool = s.blindPool[:n-1]
	} else if bf, err = s.newBlindFactors(); err != nil {
		return nil, 0, err
	}
	scaled, err := s.group.ScalarMul(bf.alpha, i)
	if err != nil {
		return nil, 0, err
	}
	diff, err := s.group.Sub(scaled, bf.betaEnc)
	if err != nil {
		return nil, 0, err
	}
	v, err := s.group.ScalarMul(big.NewInt(bf.eps), diff)
	if err != nil {
		return nil, 0, err
	}
	return v, bf.eps, nil
}
