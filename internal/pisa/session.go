package pisa

import (
	"crypto/rsa"
	"fmt"
	"time"

	"pisa/internal/geo"
)

// SDCService is the slice of the SDC an SU needs: request processing.
// *SDC satisfies it in process; node.SDCClient satisfies it over TCP.
type SDCService interface {
	ProcessRequest(req *TransmissionRequest) (*Response, error)
}

// Session wraps the repeated-use flow of §VI-A: prepare an encrypted
// request once (expensive), then re-submit cheap re-randomised copies
// whenever spectrum is needed again, keeping the latest license.
type Session struct {
	su        *SU
	sdc       SDCService
	verifyKey *rsa.PublicKey
	base      *TransmissionRequest
	now       func() time.Time
	lastGrant *Grant
}

// NewSession prepares the base request (the ~221 s offline step at
// paper scale) and binds the session to an SDC.
func NewSession(su *SU, sdc SDCService, verifyKey *rsa.PublicKey, eirpUnits map[int]int64, disclosure geo.Disclosure) (*Session, error) {
	if su == nil || sdc == nil || verifyKey == nil {
		return nil, fmt.Errorf("pisa: session requires SU, SDC and verify key")
	}
	base, err := su.PrepareRequest(eirpUnits, disclosure)
	if err != nil {
		return nil, err
	}
	return &Session{
		su:        su,
		sdc:       sdc,
		verifyKey: verifyKey,
		base:      base,
		now:       time.Now,
	}, nil
}

// PrecomputeRounds tops up the SU's nonce pool for the given number
// of future Submit calls (offline work).
func (s *Session) PrecomputeRounds(rounds int) error {
	if rounds < 0 {
		return fmt.Errorf("pisa: negative rounds %d", rounds)
	}
	return s.su.PrecomputeNonces(rounds * s.base.Ciphertexts())
}

// Submit sends one fresh (unlinkable) copy of the request and opens
// the response. The grant is cached for License.
func (s *Session) Submit() (Grant, error) {
	req, err := s.su.RefreshRequest(s.base)
	if err != nil {
		return Grant{}, err
	}
	resp, err := s.sdc.ProcessRequest(req)
	if err != nil {
		return Grant{}, err
	}
	grant, err := s.su.OpenResponse(resp, req, s.verifyKey)
	if err != nil {
		return Grant{}, err
	}
	s.lastGrant = &grant
	return grant, nil
}

// Authorized reports whether the session currently holds a valid,
// unexpired license. SUs call this before transmitting; an expired
// license means Submit again.
func (s *Session) Authorized() bool {
	return s.lastGrant != nil &&
		s.lastGrant.Granted &&
		s.lastGrant.License.ValidAt(s.now().Unix())
}

// LastGrant returns the most recent grant, if any.
func (s *Session) LastGrant() (Grant, bool) {
	if s.lastGrant == nil {
		return Grant{}, false
	}
	return *s.lastGrant, true
}
