package pisa

import (
	"testing"
	"time"

	"pisa/internal/geo"
)

func TestSessionLifecycle(t *testing.T) {
	d := newDeployment(t)
	su := d.newSU(t, "su-session", 7)
	pu := d.newPU(t, "tv-session", 8)

	sess, err := NewSession(su, d.sdc, d.sdc.VerifyKey(), map[int]int64{1: maxEIRP(d)}, geo.Disclosure{})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if sess.Authorized() {
		t.Fatal("authorized before any submission")
	}
	if _, ok := sess.LastGrant(); ok {
		t.Fatal("grant present before any submission")
	}
	if err := sess.PrecomputeRounds(3); err != nil {
		t.Fatal(err)
	}

	// Round 1: channel free -> granted, authorized.
	grant, err := sess.Submit()
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if !grant.Granted || !sess.Authorized() {
		t.Fatal("free channel not granted")
	}

	// PU appears: the next submission is denied and authorization
	// drops.
	d.tune(t, pu, 1, d.params.Watch.Quantize(d.params.Watch.SMinPUmW))
	grant, err = sess.Submit()
	if err != nil {
		t.Fatal(err)
	}
	if grant.Granted || sess.Authorized() {
		t.Fatal("session stayed authorized against an active PU")
	}

	// PU leaves: authorized again.
	d.off(t, pu)
	if _, err := sess.Submit(); err != nil {
		t.Fatal(err)
	}
	if !sess.Authorized() {
		t.Fatal("session not re-authorized after PU left")
	}
	last, ok := sess.LastGrant()
	if !ok || !last.Granted {
		t.Fatal("LastGrant does not reflect the latest submission")
	}
}

func TestSessionAuthorizationExpires(t *testing.T) {
	wp := testWatchParams(t)
	params := TestParams(wp)
	stp, err := NewSTP(nil, params.PaillierBits)
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Date(2026, 7, 5, 10, 0, 0, 0, time.UTC)
	sdc, err := NewSDC("sdc-ttl", params, nil, stp,
		WithClock(func() time.Time { return clock }),
		WithLicenseTTL(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	su, err := NewSU(nil, "su-ttl", 7, params, sdc.Planner(), stp.GroupKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := stp.RegisterSU(su.ID(), su.PublicKey()); err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(su, sdc, sdc.VerifyKey(), map[int]int64{0: 100}, geo.Disclosure{})
	if err != nil {
		t.Fatal(err)
	}
	sess.now = func() time.Time { return clock }
	if _, err := sess.Submit(); err != nil {
		t.Fatal(err)
	}
	if !sess.Authorized() {
		t.Fatal("not authorized after grant")
	}
	// Two hours later the license has lapsed.
	clock = clock.Add(2 * time.Hour)
	if sess.Authorized() {
		t.Fatal("authorized on an expired license")
	}
}

func TestSessionValidation(t *testing.T) {
	d := newDeployment(t)
	su := d.newSU(t, "su-v", 7)
	if _, err := NewSession(nil, d.sdc, d.sdc.VerifyKey(), map[int]int64{0: 1}, geo.Disclosure{}); err == nil {
		t.Error("nil SU accepted")
	}
	if _, err := NewSession(su, nil, d.sdc.VerifyKey(), map[int]int64{0: 1}, geo.Disclosure{}); err == nil {
		t.Error("nil SDC accepted")
	}
	if _, err := NewSession(su, d.sdc, nil, map[int]int64{0: 1}, geo.Disclosure{}); err == nil {
		t.Error("nil key accepted")
	}
	sess, err := NewSession(su, d.sdc, d.sdc.VerifyKey(), map[int]int64{0: 1}, geo.Disclosure{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.PrecomputeRounds(-1); err == nil {
		t.Error("negative rounds accepted")
	}
}
