package shard

import (
	"strconv"
	"sync"

	"pisa/internal/obs"
)

// shardMetrics is the router's instrumentation set, registered once
// into the process-wide obs registry (get-or-create semantics, same
// convention as the SDC's metrics).
//
// Stage labels follow the sharded pipeline (DESIGN.md §15):
//
//	fanout  slice + per-shard ProcessShard calls (max over shards
//	        when parallel, sum when WithSerialFanout)
//	merge   Paillier-additive composition of the partial sums
//	license sign + encrypt + eta-mask (eq. 17)
//	update  PU update broadcast
//	total   router ProcessRequest end to end
//
// Per-shard latencies land in pisa_router_shard_seconds{shard="i"} —
// one series per fan-out slot, bounded by the shard count.
type shardMetrics struct {
	requests      *obs.Counter
	requestErrors *obs.Counter
	updateErrors  *obs.Counter
	stage         map[string]*obs.Histogram

	mu     sync.Mutex
	shards map[int]*obs.Histogram
}

var routerStages = []string{"fanout", "merge", "license", "update", "total"}

var (
	shardMetricsOnce sync.Once
	shardM           *shardMetrics
)

// routerMetrics lazily builds the shared router metric set.
func routerMetrics() *shardMetrics {
	shardMetricsOnce.Do(func() {
		r := obs.Default()
		m := &shardMetrics{
			requests: r.Counter("pisa_router_requests_total",
				"SU transmission requests processed by the shard router", nil),
			requestErrors: r.Counter("pisa_router_request_errors_total",
				"sharded SU transmission requests that failed", nil),
			updateErrors: r.Counter("pisa_router_update_errors_total",
				"PU update broadcasts with at least one failed shard", nil),
			stage:  make(map[string]*obs.Histogram, len(routerStages)),
			shards: make(map[int]*obs.Histogram),
		}
		for _, s := range routerStages {
			m.stage[s] = r.Histogram("pisa_router_stage_seconds",
				"per-stage sharded request processing time (fan-out, merge, license)",
				obs.Labels{"stage": s}, nil)
		}
		shardM = m
	})
	return shardM
}

// shardCall returns the latency histogram for fan-out slot i,
// creating the labelled series on first use.
func (m *shardMetrics) shardCall(i int) *obs.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.shards[i]
	if !ok {
		h = obs.Default().Histogram("pisa_router_shard_seconds",
			"one shard's ProcessShard latency as seen by the router",
			obs.Labels{"shard": strconv.Itoa(i)}, nil)
		m.shards[i] = h
	}
	return h
}
