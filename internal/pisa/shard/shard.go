// Package shard implements channel-sharding of the SDC (DESIGN.md
// §15): the C×B encrypted budget matrix is partitioned into N
// contiguous channel windows, each owned by an independent SDC
// instance (pisa.WithChannelWindow) with its own WAL, decision cache
// and STP batcher, and a thin Router fans each SU request out to every
// shard, then merges the per-shard partial sums homomorphically before
// the single license mask (eq. 17).
//
// Channel-partitioning is privacy-neutral: every shard still sees
// every block of the request and every PU update ciphertext, exactly
// the view the monolithic SDC has — unlike block-partitioning, which
// would hand each shard a location-correlated subset. And because
// eq. 17's masked-license exponent is linear in the per-(channel,
// block) terms, the per-shard sums compose with plain Paillier
// addition under the SU's key; no shard ever holds a decryptable
// decision, and only the router signs licenses.
package shard

import (
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	"io"
	"math/big"
	"sync"
	"time"

	"pisa/internal/dsig"
	"pisa/internal/geo"
	"pisa/internal/paillier"
	"pisa/internal/parallel"
	"pisa/internal/pisa"
	"pisa/internal/watch"
)

// Service is the per-shard surface the Router fans out to. A local
// *pisa.SDC satisfies it directly; a remote shard is reached through
// node.SDCClient (which adds pooling, retries and replica failover).
type Service interface {
	ProcessShard(*pisa.TransmissionRequest) (*pisa.ShardAnswer, error)
	HandlePUUpdate(*pisa.PUUpdate) error
}

// Windows partitions C channels into n contiguous near-equal windows
// [lo, hi); the first channels%n windows are one channel larger. Shard
// i of an N-shard deployment owns Windows(C, N)[i] — the router and
// the shard constructors must agree on this assignment.
func Windows(channels, n int) ([][2]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	if n > channels {
		return nil, fmt.Errorf("shard: %d shards exceed %d channels", n, channels)
	}
	out := make([][2]int, n)
	base, rem := channels/n, channels%n
	lo := 0
	for i := range out {
		size := base
		if i < rem {
			size++
		}
		out[i] = [2]int{lo, lo + size}
		lo += size
	}
	return out, nil
}

// Router fans SU requests out to the shards and owns everything the
// shards gave up: the license signing key, the serial counter, and the
// merged grant decision. It satisfies pisa.SDCService, so sessions,
// node.SDCServer and the benches drive it exactly like a monolithic
// SDC.
type Router struct {
	params  pisa.Params
	issuer  string
	stp     pisa.STPService
	public  *watch.System
	signer  *dsig.Signer
	random  io.Reader
	now     func() time.Time
	licTTL  time.Duration
	shards  []Service
	windows [][2]int
	// serialFanout runs the per-shard calls sequentially instead of on
	// goroutines. On a host with fewer cores than shards the parallel
	// calls time-slice against each other, which inflates every
	// per-shard latency reading; the benches use the serial mode to
	// measure uncontended per-shard time (see bench.MeasureShards).
	serialFanout bool

	mu     sync.Mutex
	serial uint64
	stats  Stats
}

// Stats are the router's cumulative counters, one struct per Router
// (the obs registry aggregates process-wide). Stage fields are summed
// nanoseconds; divide by Requests for means. ShardNs[i] sums shard
// i's ProcessShard latency as seen by the router (queueing, transport
// and failover included for remote shards).
type Stats struct {
	Requests  uint64
	Errors    uint64
	Updates   uint64
	FanoutNs  int64
	MergeNs   int64
	LicenseNs int64
	ShardNs   []int64
}

// RouterOption customises Router construction.
type RouterOption interface {
	apply(*Router)
}

type routerOptionFunc func(*Router)

func (f routerOptionFunc) apply(r *Router) { f(r) }

// WithRouterClock injects a deterministic time source (tests).
func WithRouterClock(now func() time.Time) RouterOption {
	return routerOptionFunc(func(r *Router) { r.now = now })
}

// WithRouterRandom injects the randomness source (default crypto/rand).
func WithRouterRandom(rd io.Reader) RouterOption {
	return routerOptionFunc(func(r *Router) { r.random = rd })
}

// WithRouterLicenseTTL sets the license validity window (default 24h).
func WithRouterLicenseTTL(ttl time.Duration) RouterOption {
	return routerOptionFunc(func(r *Router) { r.licTTL = ttl })
}

// WithSerialFanout issues the per-shard calls one at a time. Benches
// use it on few-core hosts so per-shard timings are uncontended; a
// real deployment with one host per shard keeps the parallel default.
func WithSerialFanout() RouterOption {
	return routerOptionFunc(func(r *Router) { r.serialFanout = true })
}

// NewRouter builds a router over the given shards. Shard i must own
// the channel window Windows(C, len(shards))[i] — the router slices
// each request along those windows and a mismatched shard would
// silently contribute nothing. The router generates its own license
// signing key: in a sharded deployment the router is the issuer, and
// the shards' signers go unused.
func NewRouter(issuer string, params pisa.Params, transmitters []watch.TVTransmitter, stp pisa.STPService, shards []Service, opts ...RouterOption) (*Router, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if stp == nil {
		return nil, fmt.Errorf("shard: router requires an STP service")
	}
	for i, sh := range shards {
		if sh == nil {
			return nil, fmt.Errorf("shard: shard %d is nil", i)
		}
	}
	windows, err := Windows(params.Watch.Channels, len(shards))
	if err != nil {
		return nil, err
	}
	public, err := watch.NewSystem(params.Watch, transmitters)
	if err != nil {
		return nil, fmt.Errorf("shard: public precomputation: %w", err)
	}
	r := &Router{
		params:  params,
		issuer:  issuer,
		stp:     stp,
		public:  public,
		random:  rand.Reader,
		now:     time.Now,
		licTTL:  24 * time.Hour,
		shards:  shards,
		windows: windows,
	}
	for _, opt := range opts {
		opt.apply(r)
	}
	// Concurrent ProcessRequest calls share the randomness source.
	r.random = paillier.SharedReader(r.random)
	if r.signer, err = dsig.NewSigner(r.random, params.SignerBits); err != nil {
		return nil, err
	}
	r.stats.ShardNs = make([]int64, len(shards))
	return r, nil
}

// Shards reports the fan-out width.
func (r *Router) Shards() int { return len(r.shards) }

// Window reports the channel window [lo, hi) assigned to shard i.
func (r *Router) Window(i int) (lo, hi int) { return r.windows[i][0], r.windows[i][1] }

// VerifyKey returns the public key SUs use to check license
// signatures — the router's own, since only the router signs.
func (r *Router) VerifyKey() *rsa.PublicKey { return r.signer.Public() }

// Planner returns the public-data planner for request building.
func (r *Router) Planner() *watch.Planner { return r.public.Planner() }

// EColumn serves the plaintext E column for a block from the router's
// own public-data precomputation — no shard round trip; E is public
// and immutable.
func (r *Router) EColumn(b geo.BlockID) ([]int64, error) {
	if !r.params.Watch.Grid.Valid(b) {
		return nil, fmt.Errorf("shard: block %d invalid", b)
	}
	e := r.public.EMatrix()
	col := make([]int64, r.params.Watch.Channels)
	for c := range col {
		v, err := e.At(c, int(b))
		if err != nil {
			return nil, err
		}
		col[c] = v
	}
	return col, nil
}

// Stats snapshots the router's counters.
func (r *Router) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.stats
	out.ShardNs = append([]int64(nil), r.stats.ShardNs...)
	return out
}

// sliceFor returns req restricted to shard i's channel window: same
// coordinates and dimensions, only the window rows populated, shared
// ciphertext pointers (matrix channel-slice views). For a remote shard
// this is what crosses the wire — 1/N of the request bytes.
func (r *Router) sliceFor(req *pisa.TransmissionRequest, i int) (*pisa.TransmissionRequest, error) {
	w := r.windows[i]
	sub := *req
	if req.FP != nil {
		fp, err := req.FP.ChannelSlice(w[0], w[1])
		if err != nil {
			return nil, err
		}
		sub.FP = fp
	} else {
		f, err := req.F.ChannelSlice(w[0], w[1])
		if err != nil {
			return nil, err
		}
		sub.F = f
	}
	return &sub, nil
}

// ProcessRequest executes one SU request across the shards: slice the
// request along the channel windows, fan the slices out (ProcessShard
// on every shard), merge the partial sums additively under the SU's
// key, fold in the grant-condition offset, and issue the single
// eta-masked license (eq. 17). Decision parity with a monolithic SDC
// is exact: the windows partition the channel rows, so the merged sum
// ranges over precisely the same (channel, block) terms.
func (r *Router) ProcessRequest(req *pisa.TransmissionRequest) (resp *pisa.Response, err error) {
	m := routerMetrics()
	m.requests.Inc()
	start := time.Now()
	defer func() {
		m.stage["total"].ObserveSince(start)
		r.mu.Lock()
		r.stats.Requests++
		if err != nil {
			r.stats.Errors++
		}
		r.mu.Unlock()
		if err != nil {
			m.requestErrors.Inc()
		}
	}()
	if req == nil {
		return nil, fmt.Errorf("shard: nil request")
	}
	if req.SUID == "" {
		return nil, fmt.Errorf("shard: request missing SU id")
	}
	// The license digest binds the ORIGINAL request — the slices are a
	// routing artifact the SU never sees. Digest also rejects a request
	// with neither or both matrix layouts before any shard is touched.
	digest, err := req.Digest()
	if err != nil {
		return nil, err
	}
	suKey, err := r.stp.SUKey(req.SUID)
	if err != nil {
		return nil, err
	}

	// Fan-out: each shard runs its slice through the full per-shard
	// pipeline (snapshot, cache, aggregate, blind, STP, unblind).
	stageStart := time.Now()
	n := len(r.shards)
	answers := make([]*pisa.ShardAnswer, n)
	shardNs := make([]int64, n)
	errs := make([]error, n)
	workers := n
	if r.serialFanout {
		workers = 1
	}
	_ = parallel.For(workers, n, func(i int) error {
		sub, err := r.sliceFor(req, i)
		if err != nil {
			errs[i] = err
			return nil
		}
		if sub.Ciphertexts() == 0 {
			// Nothing of the request falls in this shard's window; the
			// additive identity needs no round trip.
			answers[i] = &pisa.ShardAnswer{}
			return nil
		}
		t0 := time.Now()
		answers[i], errs[i] = r.shards[i].ProcessShard(sub)
		shardNs[i] = time.Since(t0).Nanoseconds()
		m.shardCall(i).ObserveSince(t0)
		return nil
	})
	// Merge fan-out timings before inspecting errors: during failover
	// the shards that DID complete still did the work, and dropping
	// their latencies would make the shutdown summary under-report
	// exactly when a shard is misbehaving.
	fanoutNs := time.Since(stageStart).Nanoseconds()
	r.mu.Lock()
	r.stats.FanoutNs += fanoutNs
	for i, ns := range shardNs {
		r.stats.ShardNs[i] += ns
	}
	r.mu.Unlock()
	for i, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("shard %d: %w", i, e)
		}
	}
	m.stage["fanout"].ObserveSince(stageStart)

	// Merge: sum(Q) = Σ_i sum_i(eps*X) - Σ_i slots_i under the SU key.
	stageStart = time.Now()
	var sumQ *paillier.Ciphertext
	var slots int64
	for i, ans := range answers {
		if ans == nil {
			return nil, fmt.Errorf("shard %d: nil answer", i)
		}
		if ans.SumQ == nil {
			continue
		}
		slots += ans.Slots
		if sumQ == nil {
			sumQ = ans.SumQ
			continue
		}
		if sumQ, err = suKey.Add(sumQ, ans.SumQ); err != nil {
			return nil, fmt.Errorf("shard: merge partial %d: %w", i, err)
		}
	}
	if sumQ == nil {
		return nil, fmt.Errorf("shard: request matrix is empty")
	}
	if sumQ, err = suKey.AddPlain(sumQ, big.NewInt(-slots)); err != nil {
		return nil, fmt.Errorf("shard: offset Q sum: %w", err)
	}
	m.stage["merge"].ObserveSince(stageStart)
	mergeNs := time.Since(stageStart).Nanoseconds()

	// License tail — identical to the monolithic SDC's, with the
	// router's signer and serial.
	stageStart = time.Now()
	now := r.now()
	r.mu.Lock()
	r.serial++
	serial := r.serial
	r.mu.Unlock()
	lic := dsig.License{
		SUID:          req.SUID,
		Issuer:        r.issuer,
		Serial:        serial,
		IssuedUnix:    now.Unix(),
		ExpiresUnix:   now.Add(r.licTTL).Unix(),
		RequestDigest: digest,
	}
	resp, err = pisa.MaskedLicense(r.random, r.signer, suKey, &lic, sumQ, r.params.EtaBits)
	if err != nil {
		return nil, err
	}
	m.stage["license"].ObserveSince(stageStart)
	r.mu.Lock()
	r.stats.MergeNs += mergeNs
	r.stats.LicenseNs += time.Since(stageStart).Nanoseconds()
	r.mu.Unlock()
	return resp, nil
}

// HandlePUUpdate broadcasts a PU update to every shard. The update's
// active channel is inside its ciphertexts, so routing to "the owning
// shard" is impossible without decrypting — and would leak the channel
// to the router if it weren't. Broadcasting keeps the privacy
// argument unchanged (each shard sees exactly what the monolithic SDC
// saw) while the rebuild work still partitions: each shard re-encrypts
// and folds only its own window rows, 1/N of the monolithic pass. On
// a shard error the PU re-sends; updates are idempotent, so shards
// that already applied it converge.
func (r *Router) HandlePUUpdate(u *pisa.PUUpdate) error {
	m := routerMetrics()
	r.mu.Lock()
	r.stats.Updates++
	r.mu.Unlock()
	start := time.Now()
	defer m.stage["update"].ObserveSince(start)
	n := len(r.shards)
	errs := make([]error, n)
	workers := n
	if r.serialFanout {
		workers = 1
	}
	_ = parallel.For(workers, n, func(i int) error {
		errs[i] = r.shards[i].HandlePUUpdate(u)
		return nil
	})
	for i, e := range errs {
		if e != nil {
			m.updateErrors.Inc()
			return fmt.Errorf("shard %d: %w", i, e)
		}
	}
	return nil
}

var _ pisa.SDCService = (*Router)(nil)
