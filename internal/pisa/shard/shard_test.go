package shard_test

import (
	"crypto/rand"
	"errors"
	"strings"
	"testing"

	"pisa/internal/geo"
	"pisa/internal/pisa"
	"pisa/internal/pisa/shard"
	"pisa/internal/propagation"
	"pisa/internal/watch"
)

// testWatchParams mirrors the pisa package's tiny deployment: 5x4
// grid of 10 m blocks, 3 channels.
func testWatchParams(t *testing.T) watch.Params {
	t.Helper()
	g, err := geo.NewGrid(5, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	return watch.Params{
		Channels:    3,
		Grid:        g,
		UnitsPerMW:  1e9,
		SUMaxEIRPmW: 4000,
		SMinPUmW:    1e-5,
		DeltaInt:    32,
		Secondary:   propagation.LogDistance{RefLossDB: 40, Exponent: 3.5},
		WorstCase:   propagation.LogDistance{RefLossDB: 60, Exponent: 4},
	}
}

func TestWindows(t *testing.T) {
	cases := []struct {
		channels, n int
		want        [][2]int
	}{
		{10, 3, [][2]int{{0, 4}, {4, 7}, {7, 10}}},
		{3, 3, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{8, 1, [][2]int{{0, 8}}},
		{7, 2, [][2]int{{0, 4}, {4, 7}}},
	}
	for _, tc := range cases {
		got, err := shard.Windows(tc.channels, tc.n)
		if err != nil {
			t.Fatalf("Windows(%d, %d): %v", tc.channels, tc.n, err)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("Windows(%d, %d) = %v, want %v", tc.channels, tc.n, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("Windows(%d, %d)[%d] = %v, want %v", tc.channels, tc.n, i, got[i], tc.want[i])
			}
		}
	}
	if _, err := shard.Windows(3, 0); err == nil {
		t.Error("Windows(3, 0) accepted")
	}
	if _, err := shard.Windows(3, 4); err == nil {
		t.Error("Windows(3, 4) accepted")
	}
}

// shardedWorld is one monolithic SDC, an N-shard router over windowed
// SDCs sharing the same STP, and the plaintext oracle both must agree
// with.
type shardedWorld struct {
	params pisa.Params
	stp    *pisa.STP
	mono   *pisa.SDC
	router *shard.Router
	oracle *watch.System
}

func newShardedWorld(t *testing.T, packed bool, n int) *shardedWorld {
	t.Helper()
	wp := testWatchParams(t)
	params := pisa.TestParams(wp)
	params.Packing = packed
	stp, err := pisa.NewSTP(rand.Reader, params.PaillierBits)
	if err != nil {
		t.Fatalf("NewSTP: %v", err)
	}
	mono, err := pisa.NewSDC("mono", params, nil, stp)
	if err != nil {
		t.Fatalf("NewSDC: %v", err)
	}
	windows, err := shard.Windows(wp.Channels, n)
	if err != nil {
		t.Fatal(err)
	}
	services := make([]shard.Service, n)
	for i, w := range windows {
		s, err := pisa.NewSDC("shard", params, nil, stp, pisa.WithChannelWindow(w[0], w[1]))
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		t.Cleanup(s.Close)
		services[i] = s
	}
	router, err := shard.NewRouter("router", params, nil, stp, services)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	oracle, err := watch.NewSystem(wp, nil)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	t.Cleanup(mono.Close)
	return &shardedWorld{params: params, stp: stp, mono: mono, router: router, oracle: oracle}
}

// ask runs one request through the monolithic SDC, the sharded
// router, and the plaintext oracle, asserts three-way decision
// parity, and returns the decision.
func (w *shardedWorld) ask(t *testing.T, su *pisa.SU, eirp map[int]int64, block geo.BlockID) bool {
	t.Helper()
	req, err := su.PrepareRequest(eirp, geo.Disclosure{})
	if err != nil {
		t.Fatalf("PrepareRequest: %v", err)
	}
	monoResp, err := w.mono.ProcessRequest(req)
	if err != nil {
		t.Fatalf("monolithic ProcessRequest: %v", err)
	}
	monoGrant, err := su.OpenResponse(monoResp, req, w.mono.VerifyKey())
	if err != nil {
		t.Fatalf("open monolithic response: %v", err)
	}
	shardResp, err := w.router.ProcessRequest(req)
	if err != nil {
		t.Fatalf("router ProcessRequest: %v", err)
	}
	shardGrant, err := su.OpenResponse(shardResp, req, w.router.VerifyKey())
	if err != nil {
		t.Fatalf("open sharded response: %v", err)
	}
	if shardGrant.Granted != monoGrant.Granted {
		t.Fatalf("sharded decision %v, monolithic %v", shardGrant.Granted, monoGrant.Granted)
	}
	if shardGrant.Granted && len(shardGrant.Signature) == 0 {
		t.Fatal("sharded grant recovered no signature")
	}
	if !shardGrant.Granted && shardGrant.Signature != nil {
		t.Fatal("sharded denial recovered a signature")
	}
	dec, err := w.oracle.Evaluate(watch.Request{Block: block, EIRPUnits: eirp})
	if err != nil {
		t.Fatalf("oracle Evaluate: %v", err)
	}
	if dec.Granted != shardGrant.Granted {
		t.Fatalf("oracle decision %v, sharded %v", dec.Granted, shardGrant.Granted)
	}
	return shardGrant.Granted
}

// tune pushes one PU update through the monolithic SDC, the router
// broadcast, and the oracle.
func (w *shardedWorld) tune(t *testing.T, pu *pisa.PU, channel int, signal int64) {
	t.Helper()
	u, err := pu.Tune(channel, signal)
	if err != nil {
		t.Fatalf("Tune: %v", err)
	}
	if err := w.mono.HandlePUUpdate(u); err != nil {
		t.Fatalf("monolithic HandlePUUpdate: %v", err)
	}
	if err := w.router.HandlePUUpdate(u); err != nil {
		t.Fatalf("router HandlePUUpdate: %v", err)
	}
	if err := w.oracle.UpdatePU(pu.ID(), watch.Registration{
		Block: pu.Block(), Channel: channel, SignalUnits: signal,
	}); err != nil {
		t.Fatalf("oracle UpdatePU: %v", err)
	}
}

// TestShardedParity runs the PU lifecycle against sharded and
// monolithic deployments in both matrix layouts and asserts every
// decision matches the watch oracle.
func TestShardedParity(t *testing.T) {
	for _, tc := range []struct {
		name   string
		packed bool
		shards int
	}{
		{"unpacked/3", false, 3},
		{"packed/3", true, 3},
		{"packed/2", true, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := newShardedWorld(t, tc.packed, tc.shards)
			su, err := pisa.NewSU(rand.Reader, "su-1", 7, w.params, w.router.Planner(), w.stp.GroupKey())
			if err != nil {
				t.Fatalf("NewSU: %v", err)
			}
			if err := w.stp.RegisterSU(su.ID(), su.PublicKey()); err != nil {
				t.Fatalf("RegisterSU: %v", err)
			}
			eirp := map[int]int64{1: w.params.Watch.Quantize(w.params.Watch.SUMaxEIRPmW)}
			if !w.ask(t, su, eirp, 7) {
				t.Fatal("denied before any PU is active")
			}

			// Activate a PU next door; the max-power request must flip
			// to denial in all three worlds.
			eCol, err := w.router.EColumn(8)
			if err != nil {
				t.Fatalf("EColumn: %v", err)
			}
			pu, err := pisa.NewPU(rand.Reader, "tv-1", 8, eCol, w.stp.GroupKey())
			if err != nil {
				t.Fatalf("NewPU: %v", err)
			}
			w.tune(t, pu, 1, w.params.Watch.Quantize(w.params.Watch.SMinPUmW))
			if w.ask(t, su, eirp, 7) {
				t.Fatal("granted next to a weak active PU")
			}

			// A different channel is unaffected by the PU.
			if !w.ask(t, su, map[int]int64{0: eirp[1]}, 7) {
				t.Fatal("denied on a channel with no PU")
			}

			// Re-asking the denied shape exercises the per-shard cache
			// hit path; the decision must not change.
			if w.ask(t, su, eirp, 7) {
				t.Fatal("cached sharded decision flipped to grant")
			}
		})
	}
}

// TestWindowedSDCRefusesDirectRequests pins the guard that keeps a
// window-local decision from masquerading as the whole-matrix one.
func TestWindowedSDCRefusesDirectRequests(t *testing.T) {
	wp := testWatchParams(t)
	params := pisa.TestParams(wp)
	stp, err := pisa.NewSTP(rand.Reader, params.PaillierBits)
	if err != nil {
		t.Fatal(err)
	}
	s, err := pisa.NewSDC("shard", params, nil, stp, pisa.WithChannelWindow(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	su, err := pisa.NewSU(rand.Reader, "su-1", 7, params, s.Planner(), stp.GroupKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := stp.RegisterSU(su.ID(), su.PublicKey()); err != nil {
		t.Fatal(err)
	}
	req, err := su.PrepareRequest(map[int]int64{0: 1}, geo.Disclosure{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ProcessRequest(req); err == nil || !strings.Contains(err.Error(), "shard router") {
		t.Fatalf("windowed ProcessRequest error = %v, want shard-router refusal", err)
	}
	if lo, hi := s.ChannelWindow(); lo != 0 || hi != 2 {
		t.Fatalf("ChannelWindow = [%d, %d), want [0, 2)", lo, hi)
	}
	// ProcessShard on the same instance works and reports its window's
	// share of the slot tests.
	ans, err := s.ProcessShard(req)
	if err != nil {
		t.Fatalf("ProcessShard: %v", err)
	}
	if ans.SumQ == nil || ans.Slots <= 0 {
		t.Fatalf("ProcessShard answer %+v, want a partial sum", ans)
	}
}

// TestRouterStats checks the shutdown-summary inputs: per-shard
// latency accumulation and the merge-stage split.
func TestRouterStats(t *testing.T) {
	w := newShardedWorld(t, true, 3)
	su, err := pisa.NewSU(rand.Reader, "su-1", 7, w.params, w.router.Planner(), w.stp.GroupKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.stp.RegisterSU(su.ID(), su.PublicKey()); err != nil {
		t.Fatal(err)
	}
	eirp := map[int]int64{1: 1}
	w.ask(t, su, eirp, 7)
	st := w.router.Stats()
	if st.Requests != 1 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want 1 request, 0 errors", st)
	}
	if len(st.ShardNs) != 3 {
		t.Fatalf("ShardNs has %d entries, want 3", len(st.ShardNs))
	}
	for i, ns := range st.ShardNs {
		if ns <= 0 {
			t.Errorf("shard %d accumulated no latency", i)
		}
	}
	if st.MergeNs <= 0 || st.LicenseNs <= 0 || st.FanoutNs <= 0 {
		t.Errorf("stage sums not populated: %+v", st)
	}
}

// failingService wedges one shard so the fan-out hits its error path.
type failingService struct {
	shard.Service
}

func (f failingService) ProcessShard(req *pisa.TransmissionRequest) (*pisa.ShardAnswer, error) {
	return nil, errors.New("injected shard failure")
}

// TestRouterStatsOnShardError pins the failover accounting fix: when
// one shard errors, the latencies of the shards that DID complete must
// still land in Stats.ShardNs — the old early return dropped them,
// under-reporting the shutdown summary exactly when a shard
// misbehaves.
func TestRouterStatsOnShardError(t *testing.T) {
	wp := testWatchParams(t)
	params := pisa.TestParams(wp)
	stp, err := pisa.NewSTP(rand.Reader, params.PaillierBits)
	if err != nil {
		t.Fatal(err)
	}
	windows, err := shard.Windows(wp.Channels, 3)
	if err != nil {
		t.Fatal(err)
	}
	services := make([]shard.Service, len(windows))
	for i, w := range windows {
		s, err := pisa.NewSDC("shard", params, nil, stp, pisa.WithChannelWindow(w[0], w[1]))
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		t.Cleanup(s.Close)
		services[i] = s
	}
	services[1] = failingService{services[1]}
	router, err := shard.NewRouter("router", params, nil, stp, services)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	su, err := pisa.NewSU(rand.Reader, "su-1", 7, params, router.Planner(), stp.GroupKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := stp.RegisterSU(su.ID(), su.PublicKey()); err != nil {
		t.Fatal(err)
	}
	req, err := su.PrepareRequest(map[int]int64{1: 1}, geo.Disclosure{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := router.ProcessRequest(req); err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("ProcessRequest error = %v, want a shard 1 failure", err)
	}
	st := router.Stats()
	if st.Requests != 1 || st.Errors != 1 {
		t.Fatalf("stats = %+v, want 1 request, 1 error", st)
	}
	if st.FanoutNs <= 0 {
		t.Error("FanoutNs not recorded on the error path")
	}
	for _, i := range []int{0, 2} {
		if st.ShardNs[i] <= 0 {
			t.Errorf("completed shard %d's latency dropped on the error path", i)
		}
	}
}
