package pisa

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
	"sync"

	"pisa/internal/paillier"
	"pisa/internal/parallel"
)

// STPService is the interface the SDC uses to reach the semi-trusted
// third party. An *STP satisfies it directly for in-process
// deployments; internal/node provides a TCP-backed implementation.
type STPService interface {
	// ConvertSigns performs the blinded sign test and key conversion
	// of eq. 15: decrypt each group-key ciphertext, map its sign to
	// +1/-1, and re-encrypt under the named SU's key.
	ConvertSigns(req *SignRequest) (*SignResponse, error)
	// SUKey returns the registered public key of an SU.
	SUKey(id string) (*paillier.PublicKey, error)
	// GroupKey returns the group public key pk_G.
	GroupKey() *paillier.PublicKey
}

// BatchConverter is the optional batched sign-test entry point: many
// SUs' blinded V vectors in one round trip. The SDC's coalescing
// layer type-asserts for it and falls back to per-request
// ConvertSigns calls when the service doesn't offer it.
type BatchConverter interface {
	ConvertSignsBatch(batch *BatchSignRequest) (*BatchSignResponse, error)
}

// STP is the semi-trusted third party: sole holder of the group
// secret key, registry of SU public keys. It sees only blinded values
// whose sign carries no information thanks to the SDC's one-time
// epsilon flips (eq. 14).
type STP struct {
	group   *paillier.PrivateKey
	random  io.Reader
	workers int

	mu      sync.RWMutex
	suKeys  map[string]*paillier.PublicKey
	journal func(id string, pk *paillier.PublicKey) error // WAL hook for registrations

	// Fixed-base engine configuration (SetFastExp). When armed, every
	// registered SU key is wrapped in a table-enabled copy so the
	// re-encryptions of ConvertSigns take the fast path.
	fbArmed     bool
	fbWindow    int
	fbShortBits int

	// observer, when set (tests only), receives the plaintext V
	// values the STP decrypts, enabling the leakage analysis of
	// §V without instrumenting production code paths.
	observer func(suID string, values []*big.Int)
}

var (
	_ STPService     = (*STP)(nil)
	_ BatchConverter = (*STP)(nil)
)

// NewSTP generates the group key pair and an empty SU registry.
func NewSTP(random io.Reader, paillierBits int) (*STP, error) {
	if random == nil {
		random = rand.Reader
	}
	group, err := paillier.GenerateKey(random, paillierBits)
	if err != nil {
		return nil, fmt.Errorf("pisa: generate group key: %w", err)
	}
	return NewSTPWithKey(random, group), nil
}

// NewSTPWithKey wraps an existing group key (deterministic tests,
// state restoration).
func NewSTPWithKey(random io.Reader, group *paillier.PrivateKey) *STP {
	if random == nil {
		random = rand.Reader
	}
	return &STP{
		group: group,
		// Sign conversion fans out over a worker pool, so the source
		// is shared-reader wrapped up front (crypto/rand passes
		// through unchanged).
		random:  paillier.SharedReader(random),
		workers: 1,
		suKeys:  make(map[string]*paillier.PublicKey),
	}
}

// SetParallelism resizes the worker pool ConvertSigns fans out over
// (see Params.Parallelism for the encoding; the constructor default
// is serial). Not safe to call concurrently with ConvertSigns.
func (s *STP) SetParallelism(n int) {
	s.workers = parallel.Resolve(n)
}

// GroupKey returns pk_G. Anyone may retrieve it (§III-C).
func (s *STP) GroupKey() *paillier.PublicKey {
	return s.group.Public()
}

// SetFastExp arms the fixed-base exponentiation engine on the group
// key and on every SU key this STP converts into: each registered key
// (current and future) is replaced by a table-enabled copy, so the
// per-element re-encryption of eq. 15 takes the windowed fast path.
// window/shortBits of 0 select the paillier defaults. Call at setup,
// before conversions start; registrations may keep arriving.
func (s *STP) SetFastExp(window, shortBits int) error {
	if err := s.group.PublicKey.EnableFastExp(s.random, window, shortBits); err != nil {
		return fmt.Errorf("pisa: arm group key: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fbArmed = true
	s.fbWindow = window
	s.fbShortBits = shortBits
	for id, pk := range s.suKeys {
		armed, err := s.armedCopy(pk)
		if err != nil {
			return fmt.Errorf("pisa: arm SU %q key: %w", id, err)
		}
		s.suKeys[id] = armed
	}
	return nil
}

// armedCopy returns a table-enabled shallow copy of pk (sharing N but
// not mutating the caller's object — SUs hand their key to RegisterSU
// and keep using it). A key that already has a table is returned
// as-is.
func (s *STP) armedCopy(pk *paillier.PublicKey) (*paillier.PublicKey, error) {
	if pk.FastExpEnabled() {
		return pk, nil
	}
	cp := &paillier.PublicKey{N: pk.N}
	if err := cp.EnableFastExp(s.random, s.fbWindow, s.fbShortBits); err != nil {
		return nil, err
	}
	return cp, nil
}

// RegisterSU stores an SU's public key for later key conversion.
// Re-registration with the same key is idempotent; changing the key
// for an existing ID is rejected (it would let an attacker redirect
// another SU's responses).
func (s *STP) RegisterSU(id string, pk *paillier.PublicKey) error {
	if id == "" {
		return fmt.Errorf("pisa: empty SU id")
	}
	if pk == nil || pk.N == nil {
		return fmt.Errorf("pisa: nil public key for SU %q", id)
	}
	s.mu.Lock()
	if existing, ok := s.suKeys[id]; ok && !existing.Equal(pk) {
		s.mu.Unlock()
		return fmt.Errorf("pisa: SU %q already registered with a different key", id)
	}
	stored := pk
	if s.fbArmed {
		armed, err := s.armedCopy(pk)
		if err != nil {
			s.mu.Unlock()
			return fmt.Errorf("pisa: arm SU %q key: %w", id, err)
		}
		stored = armed
	}
	s.suKeys[id] = stored
	journal := s.journal
	s.mu.Unlock()
	// As with SDC updates, the WAL append happens outside the lock and
	// gates the acknowledgement: a journal failure surfaces to the SU,
	// which retries. The idempotent re-registration path journals too —
	// replay tolerates duplicate same-key records, and skipping it would
	// break the retry story: a first attempt whose append failed leaves
	// the key in the map, so acking the retry without a record would
	// silently lose the registration at the next crash.
	if journal != nil {
		if err := journal(id, pk); err != nil {
			return fmt.Errorf("pisa: journal SU registration: %w", err)
		}
	}
	return nil
}

// SetRegistrationJournal attaches the write-ahead hook for SU key
// registrations. A durable STP arms it only after recovery replay.
func (s *STP) SetRegistrationJournal(fn func(id string, pk *paillier.PublicKey) error) {
	s.mu.Lock()
	s.journal = fn
	s.mu.Unlock()
}

// SUKey implements STPService.
func (s *STP) SUKey(id string) (*paillier.PublicKey, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pk, ok := s.suKeys[id]
	if !ok {
		return nil, fmt.Errorf("pisa: SU %q not registered with STP", id)
	}
	return pk, nil
}

// requestCodec reconstructs and validates the slot codec a packed
// sign request declares; nil for unpacked requests. The payload width
// is irrelevant for unpacking, so the widest legal value is used.
func (s *STP) requestCodec(req *SignRequest) (*paillier.SlotCodec, error) {
	if !req.Packed {
		return nil, nil
	}
	codec, err := paillier.NewSlotCodec(req.Slots, req.SlotBits, req.SlotBits-2)
	if err != nil {
		return nil, fmt.Errorf("pisa: sign request slot geometry: %w", err)
	}
	if err := codec.CheckKey(s.group.Public()); err != nil {
		return nil, fmt.Errorf("pisa: sign request slot geometry: %w", err)
	}
	return codec, nil
}

// signOf maps a decrypted blinded value to its converted sign: the
// plain eq. 15 test for scalar values, or — packed — the sum of the
// per-slot sign tests, so the SDC's unblinded per-element q becomes
// (slots that passed) - (slots that failed).
func signOf(v *big.Int, codec *paillier.SlotCodec) (int64, error) {
	if codec == nil {
		if v.Sign() > 0 {
			return 1, nil
		}
		return -1, nil
	}
	slots, err := codec.Unpack(v)
	if err != nil {
		return 0, err
	}
	var sum int64
	for _, sv := range slots {
		if sv.Sign() > 0 {
			sum++
		} else {
			sum--
		}
	}
	return sum, nil
}

// ConvertSigns implements STPService: eq. 15 plus key conversion.
func (s *STP) ConvertSigns(req *SignRequest) (*SignResponse, error) {
	if req == nil {
		return nil, fmt.Errorf("pisa: nil sign request")
	}
	resps, err := s.convertAll([]*SignRequest{req})
	if err != nil {
		return nil, err
	}
	return resps[0], nil
}

// ConvertSignsBatch implements BatchConverter: the sign tests of many
// SU requests in one call. Beyond saving round trips, the whole batch
// shares the hoisted per-key decryption context (paillier.DecryptBatch)
// and resolves each SU key once instead of once per element.
func (s *STP) ConvertSignsBatch(batch *BatchSignRequest) (*BatchSignResponse, error) {
	if batch == nil || len(batch.Reqs) == 0 {
		return nil, fmt.Errorf("pisa: empty batch sign request")
	}
	resps, err := s.convertAll(batch.Reqs)
	if err != nil {
		return nil, err
	}
	return &BatchSignResponse{Resps: resps}, nil
}

// convertAll is the shared conversion kernel. Per-request setup (SU
// key lookup, codec validation) is hoisted out of the element loop;
// all elements of all requests are then decrypted through one batched
// call whose CRT context is set up once per worker, sign-tested, and
// re-encrypted under their request's SU key.
func (s *STP) convertAll(reqs []*SignRequest) ([]*SignResponse, error) {
	type reqState struct {
		suKey *paillier.PublicKey
		codec *paillier.SlotCodec
		off   int // offset of this request's elements in the flat batch
	}
	states := make([]reqState, len(reqs))
	total := 0
	for r, req := range reqs {
		if req == nil {
			return nil, fmt.Errorf("pisa: nil sign request in batch slot %d", r)
		}
		suKey, err := s.SUKey(req.SUID)
		if err != nil {
			return nil, err
		}
		codec, err := s.requestCodec(req)
		if err != nil {
			return nil, err
		}
		states[r] = reqState{suKey: suKey, codec: codec, off: total}
		total += len(req.V)
	}
	flat := make([]*paillier.Ciphertext, 0, total)
	owner := make([]int, 0, total) // flat index -> request index
	for r, req := range reqs {
		flat = append(flat, req.V...)
		for range req.V {
			owner = append(owner, r)
		}
	}
	vals, err := s.group.DecryptBatch(flat, s.workers)
	if err != nil {
		return nil, fmt.Errorf("pisa: decrypt V: %w", err)
	}
	out := make([]*paillier.Ciphertext, total)
	// Sign test + re-encrypt per element; positional writes keep every
	// response in its request's order at any worker count.
	err = parallel.For(s.workers, total, func(i int) error {
		st := states[owner[i]]
		x, err := signOf(vals[i], st.codec)
		if err != nil {
			return fmt.Errorf("pisa: sign test V[%d]: %w", i-st.off, err)
		}
		enc, err := st.suKey.EncryptInt(s.random, x)
		if err != nil {
			return fmt.Errorf("pisa: encrypt X[%d]: %w", i-st.off, err)
		}
		out[i] = enc
		return nil
	})
	if err != nil {
		return nil, err
	}
	resps := make([]*SignResponse, len(reqs))
	for r, req := range reqs {
		st := states[r]
		resps[r] = &SignResponse{X: out[st.off : st.off+len(req.V)]}
		if s.observer != nil {
			s.observer(req.SUID, vals[st.off:st.off+len(req.V)])
		}
	}
	return resps, nil
}
