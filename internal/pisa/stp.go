package pisa

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
	"sync"

	"pisa/internal/paillier"
	"pisa/internal/parallel"
)

// STPService is the interface the SDC uses to reach the semi-trusted
// third party. An *STP satisfies it directly for in-process
// deployments; internal/node provides a TCP-backed implementation.
type STPService interface {
	// ConvertSigns performs the blinded sign test and key conversion
	// of eq. 15: decrypt each group-key ciphertext, map its sign to
	// +1/-1, and re-encrypt under the named SU's key.
	ConvertSigns(req *SignRequest) (*SignResponse, error)
	// SUKey returns the registered public key of an SU.
	SUKey(id string) (*paillier.PublicKey, error)
	// GroupKey returns the group public key pk_G.
	GroupKey() *paillier.PublicKey
}

// STP is the semi-trusted third party: sole holder of the group
// secret key, registry of SU public keys. It sees only blinded values
// whose sign carries no information thanks to the SDC's one-time
// epsilon flips (eq. 14).
type STP struct {
	group   *paillier.PrivateKey
	random  io.Reader
	workers int

	mu      sync.RWMutex
	suKeys  map[string]*paillier.PublicKey
	journal func(id string, pk *paillier.PublicKey) error // WAL hook for registrations

	// Fixed-base engine configuration (SetFastExp). When armed, every
	// registered SU key is wrapped in a table-enabled copy so the
	// re-encryptions of ConvertSigns take the fast path.
	fbArmed     bool
	fbWindow    int
	fbShortBits int

	// observer, when set (tests only), receives the plaintext V
	// values the STP decrypts, enabling the leakage analysis of
	// §V without instrumenting production code paths.
	observer func(suID string, values []*big.Int)
}

var _ STPService = (*STP)(nil)

// NewSTP generates the group key pair and an empty SU registry.
func NewSTP(random io.Reader, paillierBits int) (*STP, error) {
	if random == nil {
		random = rand.Reader
	}
	group, err := paillier.GenerateKey(random, paillierBits)
	if err != nil {
		return nil, fmt.Errorf("pisa: generate group key: %w", err)
	}
	return NewSTPWithKey(random, group), nil
}

// NewSTPWithKey wraps an existing group key (deterministic tests,
// state restoration).
func NewSTPWithKey(random io.Reader, group *paillier.PrivateKey) *STP {
	if random == nil {
		random = rand.Reader
	}
	return &STP{
		group: group,
		// Sign conversion fans out over a worker pool, so the source
		// is shared-reader wrapped up front (crypto/rand passes
		// through unchanged).
		random:  paillier.SharedReader(random),
		workers: 1,
		suKeys:  make(map[string]*paillier.PublicKey),
	}
}

// SetParallelism resizes the worker pool ConvertSigns fans out over
// (see Params.Parallelism for the encoding; the constructor default
// is serial). Not safe to call concurrently with ConvertSigns.
func (s *STP) SetParallelism(n int) {
	s.workers = parallel.Resolve(n)
}

// GroupKey returns pk_G. Anyone may retrieve it (§III-C).
func (s *STP) GroupKey() *paillier.PublicKey {
	return s.group.Public()
}

// SetFastExp arms the fixed-base exponentiation engine on the group
// key and on every SU key this STP converts into: each registered key
// (current and future) is replaced by a table-enabled copy, so the
// per-element re-encryption of eq. 15 takes the windowed fast path.
// window/shortBits of 0 select the paillier defaults. Call at setup,
// before conversions start; registrations may keep arriving.
func (s *STP) SetFastExp(window, shortBits int) error {
	if err := s.group.PublicKey.EnableFastExp(s.random, window, shortBits); err != nil {
		return fmt.Errorf("pisa: arm group key: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fbArmed = true
	s.fbWindow = window
	s.fbShortBits = shortBits
	for id, pk := range s.suKeys {
		armed, err := s.armedCopy(pk)
		if err != nil {
			return fmt.Errorf("pisa: arm SU %q key: %w", id, err)
		}
		s.suKeys[id] = armed
	}
	return nil
}

// armedCopy returns a table-enabled shallow copy of pk (sharing N but
// not mutating the caller's object — SUs hand their key to RegisterSU
// and keep using it). A key that already has a table is returned
// as-is.
func (s *STP) armedCopy(pk *paillier.PublicKey) (*paillier.PublicKey, error) {
	if pk.FastExpEnabled() {
		return pk, nil
	}
	cp := &paillier.PublicKey{N: pk.N}
	if err := cp.EnableFastExp(s.random, s.fbWindow, s.fbShortBits); err != nil {
		return nil, err
	}
	return cp, nil
}

// RegisterSU stores an SU's public key for later key conversion.
// Re-registration with the same key is idempotent; changing the key
// for an existing ID is rejected (it would let an attacker redirect
// another SU's responses).
func (s *STP) RegisterSU(id string, pk *paillier.PublicKey) error {
	if id == "" {
		return fmt.Errorf("pisa: empty SU id")
	}
	if pk == nil || pk.N == nil {
		return fmt.Errorf("pisa: nil public key for SU %q", id)
	}
	s.mu.Lock()
	if existing, ok := s.suKeys[id]; ok && !existing.Equal(pk) {
		s.mu.Unlock()
		return fmt.Errorf("pisa: SU %q already registered with a different key", id)
	}
	stored := pk
	if s.fbArmed {
		armed, err := s.armedCopy(pk)
		if err != nil {
			s.mu.Unlock()
			return fmt.Errorf("pisa: arm SU %q key: %w", id, err)
		}
		stored = armed
	}
	s.suKeys[id] = stored
	journal := s.journal
	s.mu.Unlock()
	// As with SDC updates, the WAL append happens outside the lock and
	// gates the acknowledgement: a journal failure surfaces to the SU,
	// which retries. The idempotent re-registration path journals too —
	// replay tolerates duplicate same-key records, and skipping it would
	// break the retry story: a first attempt whose append failed leaves
	// the key in the map, so acking the retry without a record would
	// silently lose the registration at the next crash.
	if journal != nil {
		if err := journal(id, pk); err != nil {
			return fmt.Errorf("pisa: journal SU registration: %w", err)
		}
	}
	return nil
}

// SetRegistrationJournal attaches the write-ahead hook for SU key
// registrations. A durable STP arms it only after recovery replay.
func (s *STP) SetRegistrationJournal(fn func(id string, pk *paillier.PublicKey) error) {
	s.mu.Lock()
	s.journal = fn
	s.mu.Unlock()
}

// SUKey implements STPService.
func (s *STP) SUKey(id string) (*paillier.PublicKey, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pk, ok := s.suKeys[id]
	if !ok {
		return nil, fmt.Errorf("pisa: SU %q not registered with STP", id)
	}
	return pk, nil
}

// ConvertSigns implements STPService: eq. 15 plus key conversion.
func (s *STP) ConvertSigns(req *SignRequest) (*SignResponse, error) {
	if req == nil {
		return nil, fmt.Errorf("pisa: nil sign request")
	}
	suKey, err := s.SUKey(req.SUID)
	if err != nil {
		return nil, err
	}
	out := make([]*paillier.Ciphertext, len(req.V))
	var observed []*big.Int
	if s.observer != nil {
		observed = make([]*big.Int, len(req.V))
	}
	// Each element is decrypt + sign test + re-encrypt, independent of
	// every other; positional writes keep the response (and the
	// observer trace) in request order at any worker count.
	err = parallel.For(s.workers, len(req.V), func(i int) error {
		v, err := s.group.Decrypt(req.V[i])
		if err != nil {
			return fmt.Errorf("pisa: decrypt V[%d]: %w", i, err)
		}
		if observed != nil {
			observed[i] = new(big.Int).Set(v)
		}
		x := int64(-1)
		if v.Sign() > 0 {
			x = 1
		}
		enc, err := suKey.EncryptInt(s.random, x)
		if err != nil {
			return fmt.Errorf("pisa: encrypt X[%d]: %w", i, err)
		}
		out[i] = enc
		return nil
	})
	if err != nil {
		return nil, err
	}
	if s.observer != nil {
		s.observer(req.SUID, observed)
	}
	return &SignResponse{X: out}, nil
}
