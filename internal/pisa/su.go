package pisa

import (
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sort"

	"pisa/internal/dsig"
	"pisa/internal/geo"
	"pisa/internal/matrix"
	"pisa/internal/paillier"
	"pisa/internal/parallel"
	"pisa/internal/watch"
)

// SU is a secondary user: it prepares encrypted transmission requests
// under the group key and opens license responses with its own key.
type SU struct {
	id      string
	block   geo.BlockID
	key     *paillier.PrivateKey
	group   *paillier.PublicKey
	planner *watch.Planner
	random  io.Reader
	workers int
	// codec mirrors the deployment's packing mode (Params.Packing):
	// non-nil means requests ship as packed matrices, k block slots per
	// ciphertext.
	codec *paillier.SlotCodec
	// nonces is the precomputed r^n pool for cheap request refreshes
	// (§VI-A's ~11 s reuse path versus ~221 s fresh preparation).
	nonces *paillier.NoncePool
}

// NewSU creates a secondary user at the given block with a fresh
// Paillier key pair of params.PaillierBits. The planner carries the
// public deployment data (grid, path loss, d^c).
func NewSU(random io.Reader, id string, block geo.BlockID, params Params, planner *watch.Planner, group *paillier.PublicKey) (*SU, error) {
	if random == nil {
		random = rand.Reader
	}
	if id == "" {
		return nil, fmt.Errorf("pisa: SU requires an id")
	}
	if planner == nil || group == nil {
		return nil, fmt.Errorf("pisa: SU requires planner and group key")
	}
	if !planner.Params().Grid.Valid(block) {
		return nil, fmt.Errorf("pisa: SU block %d invalid", block)
	}
	key, err := paillier.GenerateKey(random, params.PaillierBits)
	if err != nil {
		return nil, fmt.Errorf("pisa: generate SU key: %w", err)
	}
	// Worker goroutines and background refills share the randomness
	// source (SharedReader passes crypto/rand through unchanged).
	random = paillier.SharedReader(random)
	// Arm the fixed-base engine on the group key so request encryption
	// and nonce generation take the fast path. Idempotent: in-process
	// deployments share one group-key object across roles, and the
	// first arm wins.
	if err := params.armFastExp(random, group); err != nil {
		return nil, fmt.Errorf("pisa: arm group key: %w", err)
	}
	codec, err := params.SlotCodec()
	if err != nil {
		return nil, err
	}
	if codec != nil {
		if err := codec.CheckKey(group); err != nil {
			return nil, fmt.Errorf("pisa: packing: %w", err)
		}
	}
	workers := parallel.Resolve(params.Parallelism)
	return &SU{
		id:      id,
		block:   block,
		key:     key,
		group:   group,
		planner: planner,
		random:  random,
		workers: workers,
		codec:   codec,
		nonces:  paillier.NewNoncePool(group, random, workers),
	}, nil
}

// ID returns the SU identifier.
func (u *SU) ID() string { return u.id }

// Block returns the SU's (private) location.
func (u *SU) Block() geo.BlockID { return u.block }

// PublicKey returns pk_j for registration with the STP.
func (u *SU) PublicKey() *paillier.PublicKey { return u.key.Public() }

// MoveTo relocates the SU to another grid block. The key pair, STP
// registration, and nonce pool survive the move — a roaming fleet
// member does not re-register — but previously prepared requests
// still encode the old block; the next PrepareRequest picks up the
// new location (and a new shape digest). Not safe to call
// concurrently with request preparation.
func (u *SU) MoveTo(block geo.BlockID) error {
	if !u.planner.Params().Grid.Valid(block) {
		return fmt.Errorf("pisa: SU block %d invalid", block)
	}
	u.block = block
	return nil
}

// SetParallelism resizes the SU's worker pool (see Params.Parallelism
// for the encoding). Not safe to call concurrently with request
// preparation.
func (u *SU) SetParallelism(n int) {
	u.workers = parallel.Resolve(n)
	u.nonces.SetWorkers(u.workers)
}

// PrepareRequest builds and encrypts the F matrix (Figure 5 steps
// 1-2). eirpUnits maps channel -> requested EIRP in integer units.
// The disclosure controls the privacy/time trade-off of §VI-A: every
// (channel, block) cell inside it is shipped — including encryptions
// of zero — so the SDC learns only that the SU is somewhere inside
// the disclosed region. An empty disclosure means the full grid
// (maximum privacy). The SU's own block must lie inside the
// disclosure, and every F value outside it must be zero, otherwise
// interference constraints would be silently dropped.
//
// The |disclosure| x C encryptions dominate the paper's ~221 s fresh
// preparation cost; they fan out over the SU's worker pool.
func (u *SU) PrepareRequest(eirpUnits map[int]int64, disclosure geo.Disclosure) (*TransmissionRequest, error) {
	p := u.planner.Params()
	if len(disclosure.Blocks) == 0 {
		disclosure = p.Grid.FullDisclosure()
	}
	if !disclosure.Contains(u.block) {
		return nil, fmt.Errorf("pisa: disclosure does not contain the SU's block %d", u.block)
	}
	f, err := u.planner.ComputeF(watch.Request{Block: u.block, EIRPUnits: eirpUnits})
	if err != nil {
		return nil, err
	}
	// Interference the SU would cause outside the disclosed region
	// cannot be checked by the SDC; refuse to under-report.
	err = f.ForEach(func(c, b int, v int64) error {
		if v != 0 && !disclosure.Contains(geo.BlockID(b)) {
			return fmt.Errorf("pisa: F(%d, %d) = %d falls outside the disclosure; widen the disclosed region", c, b, v)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// The shape digest keys the SDC's encrypted-decision cache; it
	// covers exactly the plaintext inputs ComputeF is deterministic in.
	shape := ShapeDigest(u.codec != nil, p.Channels, p.Grid.Blocks(), u.block, eirpUnits, disclosure.Blocks)
	if u.codec != nil {
		return u.preparePacked(f, disclosure, shape)
	}
	enc, err := matrix.NewEnc(u.group, p.Channels, p.Grid.Blocks())
	if err != nil {
		return nil, err
	}
	// Flatten the disclosure into one work list, block-major then
	// channel — the same enumeration order as the serial loop, so
	// workers=1 draws randomness in the identical sequence.
	type cellRef struct {
		c int
		b geo.BlockID
	}
	work := make([]cellRef, 0, len(disclosure.Blocks)*p.Channels)
	for _, b := range disclosure.Blocks {
		for c := 0; c < p.Channels; c++ {
			work = append(work, cellRef{c: c, b: b})
		}
	}
	cts := make([]*paillier.Ciphertext, len(work))
	err = parallel.For(u.workers, len(work), func(k int) error {
		c, b := work[k].c, work[k].b
		v, err := f.At(c, int(b))
		if err != nil {
			return err
		}
		ct, err := u.group.Encrypt(u.random, big.NewInt(v))
		if err != nil {
			return fmt.Errorf("pisa: encrypt F(%d, %d): %w", c, b, err)
		}
		cts[k] = ct
		return nil
	})
	if err != nil {
		return nil, err
	}
	for k, ct := range cts {
		if err := enc.Set(work[k].c, int(work[k].b), ct); err != nil {
			return nil, err
		}
	}
	return &TransmissionRequest{
		SUID:        u.id,
		F:           enc,
		Disclosure:  append([]geo.BlockID(nil), disclosure.Blocks...),
		ShapeDigest: shape,
	}, nil
}

// preparePacked builds the packed transmission request: one ciphertext
// per (channel, slot group) for every group touched by the disclosure.
// Disclosure granularity rounds up to whole groups — the effective
// disclosed region is the union of the k-block groups covering the
// requested blocks, which only widens the region (never narrows it),
// so the unpacked footprint check above still guarantees no
// interference constraint is dropped. Out-of-disclosure slots inside a
// shipped group and padding slots past the grid encrypt zero.
func (u *SU) preparePacked(f *matrix.Int, disclosure geo.Disclosure, shape [32]byte) (*TransmissionRequest, error) {
	p := u.planner.Params()
	blocks := p.Grid.Blocks()
	k := u.codec.Slots()
	fp, err := matrix.NewPacked(u.group, u.codec, p.Channels, blocks)
	if err != nil {
		return nil, err
	}
	// Enumerate the shipped groups in ascending order, then expand
	// group-major/channel-minor into one work list so workers=1 draws
	// randomness in the identical sequence as any pool size.
	seen := make(map[int]bool, len(disclosure.Blocks))
	groups := make([]int, 0, len(disclosure.Blocks))
	for _, b := range disclosure.Blocks {
		if g := int(b) / k; !seen[g] {
			seen[g] = true
			groups = append(groups, g)
		}
	}
	sort.Ints(groups)
	type groupRef struct {
		c, g int
	}
	work := make([]groupRef, 0, len(groups)*p.Channels)
	for _, g := range groups {
		for c := 0; c < p.Channels; c++ {
			work = append(work, groupRef{c: c, g: g})
		}
	}
	cts := make([]*paillier.Ciphertext, len(work))
	err = parallel.For(u.workers, len(work), func(i int) error {
		c, g := work[i].c, work[i].g
		vals := make([]*big.Int, k)
		for s := 0; s < k; s++ {
			if b := g*k + s; b < blocks {
				v, err := f.At(c, b)
				if err != nil {
					return err
				}
				vals[s] = big.NewInt(v)
			} else {
				vals[s] = big.NewInt(0)
			}
		}
		ct, err := u.group.PackEncrypt(u.random, u.codec, vals)
		if err != nil {
			return fmt.Errorf("pisa: pack-encrypt F(%d, group %d): %w", c, g, err)
		}
		cts[i] = ct
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, ct := range cts {
		if err := fp.SetGroup(work[i].c, work[i].g, ct); err != nil {
			return nil, err
		}
	}
	return &TransmissionRequest{
		SUID:        u.id,
		FP:          fp,
		Disclosure:  append([]geo.BlockID(nil), disclosure.Blocks...),
		ShapeDigest: shape,
	}, nil
}

// PrecomputeNonces extends the SU's offline pool of re-randomisation
// factors. Each pooled nonce turns one ciphertext refresh into a
// single modular multiplication, which is what makes RefreshRequest
// roughly 20x cheaper than PrepareRequest (the paper's 11 s vs 221 s).
func (u *SU) PrecomputeNonces(count int) error {
	if count < 0 {
		return fmt.Errorf("pisa: negative nonce count %d", count)
	}
	if err := u.nonces.Fill(count); err != nil {
		return fmt.Errorf("pisa: precompute nonce: %w", err)
	}
	return nil
}

// EnableNonceAutoRefill arms (target > 0) or disarms (target == 0)
// background refilling of the nonce pool: whenever a refresh leaves
// fewer than target/4 (at least 1) nonces pooled, a background
// goroutine tops the pool back up to target, keeping sustained
// refresh traffic on the cheap path without an operator calling
// PrecomputeNonces between requests.
func (u *SU) EnableNonceAutoRefill(target int) error {
	if target < 0 {
		return fmt.Errorf("pisa: negative nonce target %d", target)
	}
	return u.nonces.SetAutoRefill(target)
}

// WaitNonceRefill blocks until any in-flight background nonce refill
// finishes — deterministic accounting for tests and shutdown.
func (u *SU) WaitNonceRefill() { u.nonces.Wait() }

// Close disarms the nonce pool's background refills and waits for any
// in-flight refill goroutine to exit. The SU remains usable (refreshes
// fall back to online nonce generation); Close only guarantees no
// goroutine outlives an SU the caller is done with.
func (u *SU) Close() { u.nonces.Close() }

// PooledNonces reports how many precomputed nonces remain.
func (u *SU) PooledNonces() int { return u.nonces.Len() }

// RefreshRequest re-randomises a previously prepared request so the
// same operating parameters produce an unlinkable ciphertext — the
// cheap reuse path the paper reports at about 11 s versus 221 s for a
// fresh preparation (§VI-A). Precomputed nonces from
// PrecomputeNonces are consumed one per ciphertext; when the pool
// runs dry the refresh falls back to fresh (slow) re-randomisation.
func (u *SU) RefreshRequest(req *TransmissionRequest) (*TransmissionRequest, error) {
	if req == nil || (req.F == nil && req.FP == nil) {
		return nil, fmt.Errorf("pisa: nil request")
	}
	if req.SUID != u.id {
		return nil, fmt.Errorf("pisa: request belongs to %q, not %q", req.SUID, u.id)
	}
	if req.FP != nil {
		return u.refreshPacked(req)
	}
	fresh, err := matrix.NewEnc(u.group, req.F.Channels(), req.F.Blocks())
	if err != nil {
		return nil, err
	}
	type cellRef struct {
		c, b int
		ct   *paillier.Ciphertext
	}
	var work []cellRef
	err = req.F.ForEach(func(c, b int, ct *paillier.Ciphertext) error {
		work = append(work, cellRef{c: c, b: b, ct: ct})
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]*paillier.Ciphertext, len(work))
	err = parallel.For(u.workers, len(work), func(k int) error {
		nonce, err := u.nonces.Get()
		if err != nil {
			return fmt.Errorf("pisa: refresh F(%d, %d): %w", work[k].c, work[k].b, err)
		}
		rr, err := u.group.RerandomizeWith(work[k].ct, nonce)
		if err != nil {
			return fmt.Errorf("pisa: refresh F(%d, %d): %w", work[k].c, work[k].b, err)
		}
		out[k] = rr
		return nil
	})
	if err != nil {
		return nil, err
	}
	for k, rr := range out {
		if err := fresh.Set(work[k].c, work[k].b, rr); err != nil {
			return nil, err
		}
	}
	return &TransmissionRequest{
		SUID: req.SUID,
		F:    fresh,
		// The shape digest survives a refresh unchanged — only the
		// ciphertext randomness moves, which is exactly what makes a
		// refreshed request a cache hit at the SDC.
		Disclosure:  append([]geo.BlockID(nil), req.Disclosure...),
		ShapeDigest: req.ShapeDigest,
	}, nil
}

// refreshPacked is RefreshRequest for packed requests: one pooled
// nonce re-randomises one group ciphertext, so a refresh costs ~k
// times fewer nonces (and modular multiplications) than the unpacked
// layout.
func (u *SU) refreshPacked(req *TransmissionRequest) (*TransmissionRequest, error) {
	fresh, err := matrix.NewPacked(u.group, req.FP.Codec(), req.FP.Channels(), req.FP.Blocks())
	if err != nil {
		return nil, err
	}
	type groupRef struct {
		c, g int
		ct   *paillier.Ciphertext
	}
	var work []groupRef
	err = req.FP.ForEachGroup(func(c, g int, ct *paillier.Ciphertext) error {
		work = append(work, groupRef{c: c, g: g, ct: ct})
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]*paillier.Ciphertext, len(work))
	err = parallel.For(u.workers, len(work), func(k int) error {
		nonce, err := u.nonces.Get()
		if err != nil {
			return fmt.Errorf("pisa: refresh F(%d, group %d): %w", work[k].c, work[k].g, err)
		}
		rr, err := u.group.RerandomizeWith(work[k].ct, nonce)
		if err != nil {
			return fmt.Errorf("pisa: refresh F(%d, group %d): %w", work[k].c, work[k].g, err)
		}
		out[k] = rr
		return nil
	})
	if err != nil {
		return nil, err
	}
	for k, rr := range out {
		if err := fresh.SetGroup(work[k].c, work[k].g, rr); err != nil {
			return nil, err
		}
	}
	return &TransmissionRequest{
		SUID:        req.SUID,
		FP:          fresh,
		Disclosure:  append([]geo.BlockID(nil), req.Disclosure...),
		ShapeDigest: req.ShapeDigest,
	}, nil
}

// Grant is the SU-side outcome of a transmission request.
type Grant struct {
	// Granted reports whether a valid license signature was
	// recovered.
	Granted bool
	// License is the permission body (meaningful when Granted).
	License dsig.License
	// Signature is the recovered valid signature (nil when denied).
	Signature []byte
}

// OpenResponse decrypts the masked signature (Figure 5 step 11 on the
// SU side) and checks it against the license body under the SDC's
// verification key. A masked (denied) value fails signature
// verification; that is reported as Granted=false, not as an error.
// The request the response answers is needed to confirm the license
// binds to the parameters this SU actually submitted.
func (u *SU) OpenResponse(resp *Response, req *TransmissionRequest, sdcKey *rsa.PublicKey) (Grant, error) {
	if resp == nil || resp.MaskedSig == nil {
		return Grant{}, fmt.Errorf("pisa: nil response")
	}
	if resp.License.SUID != u.id {
		return Grant{}, fmt.Errorf("pisa: license issued to %q, not %q", resp.License.SUID, u.id)
	}
	if req != nil {
		digest, err := req.Digest()
		if err != nil {
			return Grant{}, err
		}
		if digest != resp.License.RequestDigest {
			return Grant{}, fmt.Errorf("pisa: license does not bind to the submitted request")
		}
	}
	val, err := u.key.Decrypt(resp.MaskedSig)
	if err != nil {
		return Grant{}, fmt.Errorf("pisa: decrypt response: %w", err)
	}
	if err := dsig.VerifyInt(sdcKey, &resp.License, val); err != nil {
		if errors.Is(err, dsig.ErrBadSignature) {
			return Grant{Granted: false, License: resp.License}, nil
		}
		return Grant{}, err
	}
	sig, err := dsig.IntToSignature(val, (sdcKey.N.BitLen()+7)/8)
	if err != nil {
		return Grant{}, err
	}
	return Grant{Granted: true, License: resp.License, Signature: sig}, nil
}
