package probe

import (
	"fmt"
	"math/rand"
	"sync"

	"pisa/internal/geo"
)

// Obfuscator implements the counter-measure the paper's related work
// describes (Bahrak et al. [7]): the spectrum database perturbs its
// answers so that denial patterns no longer pinpoint protected
// receivers, trading some secondary utility (spurious denials) for
// primary-user location privacy.
//
// Mechanism: deterministic per-(block, channel) noise flips a
// fraction of answers from grant to deny. False *grants* are never
// introduced — the obfuscation must not endanger primary users — so
// the perturbation is one-sided: real denials stay, decoy denials
// appear. Decoys are sticky (the same probe always gets the same
// answer), otherwise an attacker could average them away by repeating
// queries.
type Obfuscator struct {
	inner Decider
	// decoyRate is the probability a granted cell answers "deny".
	decoyRate float64
	rng       *rand.Rand
	mu        sync.Mutex
	sticky    map[obfKey]bool // true = flip this cell to deny

	// FalseDenials counts grants suppressed so far — the utility
	// cost of the obfuscation.
	FalseDenials int
}

type obfKey struct {
	block   geo.BlockID
	channel int
}

// NewObfuscator wraps a decider. decoyRate in (0, 1) is the chance a
// truly-grantable cell is reported as denied; seed makes the decoy
// field reproducible.
func NewObfuscator(inner Decider, decoyRate float64, seed int64) (*Obfuscator, error) {
	if inner == nil {
		return nil, fmt.Errorf("probe: obfuscator requires a decider")
	}
	if decoyRate <= 0 || decoyRate >= 1 {
		return nil, fmt.Errorf("probe: decoy rate %g outside (0, 1)", decoyRate)
	}
	return &Obfuscator{
		inner:     inner,
		decoyRate: decoyRate,
		rng:       rand.New(rand.NewSource(seed)),
		sticky:    make(map[obfKey]bool),
	}, nil
}

// Decide implements Decider with one-sided perturbation.
func (o *Obfuscator) Decide(block geo.BlockID, channel int, eirpUnits int64) (bool, error) {
	granted, err := o.inner.Decide(block, channel, eirpUnits)
	if err != nil {
		return false, err
	}
	if !granted {
		return false, nil // real denials always stand
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	key := obfKey{block: block, channel: channel}
	flip, ok := o.sticky[key]
	if !ok {
		flip = o.rng.Float64() < o.decoyRate
		o.sticky[key] = flip
	}
	if flip {
		o.FalseDenials++
		return false, nil
	}
	return true, nil
}

// TradeoffReport quantifies what the obfuscation bought and cost for
// one attack sweep against a single protected receiver.
type TradeoffReport struct {
	// ErrorPlain and ErrorObfuscated are the attacker's localization
	// errors in metres without and with the counter-measure.
	ErrorPlain, ErrorObfuscated float64
	// DenialsPlain and DenialsObfuscated count denied probes.
	DenialsPlain, DenialsObfuscated int
	// FalseDenialRate is the fraction of additional (spurious)
	// denials among all probes — the utility price.
	FalseDenialRate float64
}

// MeasureTradeoff runs the probing attack against a decider with and
// without obfuscation and reports the privacy gain and utility cost.
// truth is the protected receiver's true position; channel selects the
// result row to score.
func MeasureTradeoff(cfg Config, plain Decider, decoyRate float64, seed int64, channel int, truth geo.Point) (TradeoffReport, error) {
	if channel < 0 || channel >= cfg.Channels {
		return TradeoffReport{}, fmt.Errorf("probe: channel %d outside [0, %d)", channel, cfg.Channels)
	}
	plainResults, err := Sweep(cfg, plain)
	if err != nil {
		return TradeoffReport{}, err
	}
	obf, err := NewObfuscator(plain, decoyRate, seed)
	if err != nil {
		return TradeoffReport{}, err
	}
	obfResults, err := Sweep(cfg, obf)
	if err != nil {
		return TradeoffReport{}, err
	}
	var report TradeoffReport
	report.DenialsPlain = len(plainResults[channel].DeniedBlocks)
	report.DenialsObfuscated = len(obfResults[channel].DeniedBlocks)
	if e, ok := LocalizationError(cfg.Grid, plainResults[channel], truth); ok {
		report.ErrorPlain = e
	}
	if e, ok := LocalizationError(cfg.Grid, obfResults[channel], truth); ok {
		report.ErrorObfuscated = e
	}
	totalProbes := 0
	for _, r := range obfResults {
		totalProbes += r.Queries
	}
	if totalProbes > 0 {
		report.FalseDenialRate = float64(obf.FalseDenials) / float64(totalProbes)
	}
	return report, nil
}
