package probe

import (
	"testing"

	"pisa/internal/geo"
	"pisa/internal/watch"
)

func TestObfuscatorValidation(t *testing.T) {
	ok := DeciderFunc(func(geo.BlockID, int, int64) (bool, error) { return true, nil })
	if _, err := NewObfuscator(nil, 0.3, 1); err == nil {
		t.Error("nil decider accepted")
	}
	for _, rate := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NewObfuscator(ok, rate, 1); err == nil {
			t.Errorf("rate %g accepted", rate)
		}
	}
}

func TestObfuscatorNeverGrantsRealDenials(t *testing.T) {
	// Safety property: a true denial must never become a grant.
	alwaysDeny := DeciderFunc(func(geo.BlockID, int, int64) (bool, error) { return false, nil })
	obf, err := NewObfuscator(alwaysDeny, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 100; b++ {
		granted, err := obf.Decide(geo.BlockID(b), 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if granted {
			t.Fatal("obfuscator granted a real denial; primary users endangered")
		}
	}
	if obf.FalseDenials != 0 {
		t.Errorf("FalseDenials = %d over pure denials", obf.FalseDenials)
	}
}

func TestObfuscatorSticky(t *testing.T) {
	alwaysGrant := DeciderFunc(func(geo.BlockID, int, int64) (bool, error) { return true, nil })
	obf, err := NewObfuscator(alwaysGrant, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	first := make(map[geo.BlockID]bool)
	for b := 0; b < 50; b++ {
		g, err := obf.Decide(geo.BlockID(b), 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		first[geo.BlockID(b)] = g
	}
	// Repeating every probe returns identical answers — no averaging
	// attack.
	for b := 0; b < 50; b++ {
		g, err := obf.Decide(geo.BlockID(b), 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if g != first[geo.BlockID(b)] {
			t.Fatalf("answer for block %d changed between probes", b)
		}
	}
	// Roughly half the grants should have been decoyed.
	denied := 0
	for _, g := range first {
		if !g {
			denied++
		}
	}
	if denied < 10 || denied > 40 {
		t.Errorf("decoy count %d/50 far from the configured 50%%", denied)
	}
}

func TestMeasureTradeoff(t *testing.T) {
	wp := attackParams(t)
	sys, err := watch.NewSystem(wp, nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := geo.BlockID(27)
	if err := sys.UpdatePU("victim", watch.Registration{
		Block: victim, Channel: 1, SignalUnits: wp.Quantize(wp.SMinPUmW),
	}); err != nil {
		t.Fatal(err)
	}
	truth, err := wp.Grid.Center(victim)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Grid:           wp.Grid,
		Channels:       wp.Channels,
		ProbeEIRPUnits: wp.Quantize(wp.SUMaxEIRPmW),
		Stride:         1,
	}
	report, err := MeasureTradeoff(cfg, oracleDecider(t, sys), 0.4, 3, 1, truth)
	if err != nil {
		t.Fatalf("MeasureTradeoff: %v", err)
	}
	// Privacy gain: the decoy field drags the centroid away from the
	// victim.
	if report.ErrorObfuscated <= report.ErrorPlain {
		t.Errorf("obfuscation did not increase localization error: %.1f m -> %.1f m",
			report.ErrorPlain, report.ErrorObfuscated)
	}
	// Utility cost: spurious denials appeared and are accounted.
	if report.DenialsObfuscated <= report.DenialsPlain {
		t.Errorf("no decoy denials: %d -> %d", report.DenialsPlain, report.DenialsObfuscated)
	}
	if report.FalseDenialRate <= 0 || report.FalseDenialRate >= 1 {
		t.Errorf("false denial rate %g implausible", report.FalseDenialRate)
	}
	// Validation.
	if _, err := MeasureTradeoff(cfg, oracleDecider(t, sys), 0.4, 3, 99, truth); err == nil {
		t.Error("invalid channel accepted")
	}
}
