// Package probe implements the primary-user inference attack of
// Bahrak et al. (DySPAN 2014, reference [7] of the paper): a
// malicious secondary user issues seemingly innocuous transmission
// requests across the service area and triangulates active TV
// receivers from the grant/deny answers alone.
//
// The attack needs nothing but the legitimate query interface, so it
// applies to plaintext WATCH and to the full PISA pipeline alike —
// PISA's guarantee is against the database operator, not against
// query-response inference (the paper scopes this out via [7]; see
// DESIGN.md §6). The package exists to *measure* that equivalence and
// to provide the substrate for obfuscation counter-measures.
package probe

import (
	"fmt"

	"pisa/internal/geo"
)

// Decider answers a probe: "would an SU at this block, transmitting
// at this EIRP on this channel, be granted?". Both the plaintext
// oracle and the encrypted pipeline satisfy it via small adapters.
type Decider interface {
	Decide(block geo.BlockID, channel int, eirpUnits int64) (bool, error)
}

// DeciderFunc adapts a closure to Decider.
type DeciderFunc func(block geo.BlockID, channel int, eirpUnits int64) (bool, error)

// Decide implements Decider.
func (f DeciderFunc) Decide(block geo.BlockID, channel int, eirpUnits int64) (bool, error) {
	return f(block, channel, eirpUnits)
}

// Config tunes the sweep.
type Config struct {
	// Grid is the service area under attack.
	Grid *geo.Grid
	// Channels is the number of channels to probe.
	Channels int
	// ProbeEIRPUnits is the power each probe requests. Higher power
	// probes "see" PUs from further away but lose spatial
	// resolution; callers typically use the regulatory cap.
	ProbeEIRPUnits int64
	// Stride probes every Stride-th block (1 = every block). Coarser
	// strides trade queries for resolution.
	Stride int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Grid == nil:
		return fmt.Errorf("probe: Grid is required")
	case c.Channels <= 0:
		return fmt.Errorf("probe: Channels must be positive, got %d", c.Channels)
	case c.ProbeEIRPUnits <= 0:
		return fmt.Errorf("probe: ProbeEIRPUnits must be positive, got %d", c.ProbeEIRPUnits)
	case c.Stride <= 0:
		return fmt.Errorf("probe: Stride must be positive, got %d", c.Stride)
	}
	return nil
}

// Result is the attacker's map of one channel.
type Result struct {
	// Channel is the probed channel.
	Channel int
	// DeniedBlocks are the probe positions that were refused — the
	// attacker's evidence of a protected receiver nearby.
	DeniedBlocks []geo.BlockID
	// Queries counts the requests spent.
	Queries int
}

// Centroid estimates the protected receiver's position as the mean of
// the denied probe positions. Returns false when nothing was denied.
func (r Result) Centroid(grid *geo.Grid) (geo.Point, bool) {
	if len(r.DeniedBlocks) == 0 {
		return geo.Point{}, false
	}
	var sum geo.Point
	for _, b := range r.DeniedBlocks {
		p, err := grid.Center(b)
		if err != nil {
			continue
		}
		sum.X += p.X
		sum.Y += p.Y
	}
	n := float64(len(r.DeniedBlocks))
	return geo.Point{X: sum.X / n, Y: sum.Y / n}, true
}

// Sweep runs the attack: probe every Stride-th block on every channel
// and record where transmission is denied.
func Sweep(cfg Config, decide Decider) ([]Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if decide == nil {
		return nil, fmt.Errorf("probe: Decider is required")
	}
	results := make([]Result, cfg.Channels)
	for c := 0; c < cfg.Channels; c++ {
		res := Result{Channel: c}
		for b := 0; b < cfg.Grid.Blocks(); b += cfg.Stride {
			granted, err := decide.Decide(geo.BlockID(b), c, cfg.ProbeEIRPUnits)
			if err != nil {
				return nil, fmt.Errorf("probe block %d channel %d: %w", b, c, err)
			}
			res.Queries++
			if !granted {
				res.DeniedBlocks = append(res.DeniedBlocks, geo.BlockID(b))
			}
		}
		results[c] = res
	}
	return results, nil
}

// LocalizationError returns the distance in metres between the
// attack's centroid estimate and the true receiver position, and
// whether the channel produced an estimate at all.
func LocalizationError(grid *geo.Grid, r Result, truth geo.Point) (float64, bool) {
	est, ok := r.Centroid(grid)
	if !ok {
		return 0, false
	}
	return est.Distance(truth), true
}
