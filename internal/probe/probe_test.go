package probe

import (
	"crypto/rand"
	"fmt"
	"testing"

	"pisa/internal/geo"
	"pisa/internal/pisa"
	"pisa/internal/propagation"
	"pisa/internal/watch"
)

func attackParams(t *testing.T) watch.Params {
	t.Helper()
	g, err := geo.NewGrid(8, 6, 10)
	if err != nil {
		t.Fatal(err)
	}
	return watch.Params{
		Channels:    2,
		Grid:        g,
		UnitsPerMW:  1e9,
		SUMaxEIRPmW: 4000,
		SMinPUmW:    1e-5,
		DeltaInt:    32,
		Secondary:   propagation.LogDistance{RefLossDB: 40, Exponent: 3.5},
		WorstCase:   propagation.LogDistance{RefLossDB: 55, Exponent: 3.6},
	}
}

func TestConfigValidation(t *testing.T) {
	wp := attackParams(t)
	good := Config{Grid: wp.Grid, Channels: 2, ProbeEIRPUnits: 1, Stride: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Grid = nil },
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.ProbeEIRPUnits = 0 },
		func(c *Config) { c.Stride = 0 },
	}
	for i, mut := range mutations {
		c := good
		mut(&c)
		if _, err := Sweep(c, DeciderFunc(func(geo.BlockID, int, int64) (bool, error) {
			return true, nil
		})); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := Sweep(good, nil); err == nil {
		t.Error("nil decider accepted")
	}
}

// oracleDecider probes the plaintext WATCH system.
func oracleDecider(t *testing.T, sys *watch.System) Decider {
	t.Helper()
	return DeciderFunc(func(b geo.BlockID, c int, eirp int64) (bool, error) {
		dec, err := sys.Evaluate(watch.Request{Block: b, EIRPUnits: map[int]int64{c: eirp}})
		if err != nil {
			return false, err
		}
		return dec.Granted, nil
	})
}

func TestAttackLocalizesPUInPlaintextWATCH(t *testing.T) {
	wp := attackParams(t)
	sys, err := watch.NewSystem(wp, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The victim watches channel 1 in block 27 (row 3, col 3).
	victim := geo.BlockID(27)
	if err := sys.UpdatePU("victim", watch.Registration{
		Block: victim, Channel: 1, SignalUnits: wp.Quantize(wp.SMinPUmW),
	}); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Grid:           wp.Grid,
		Channels:       wp.Channels,
		ProbeEIRPUnits: wp.Quantize(wp.SUMaxEIRPmW),
		Stride:         1,
	}
	results, err := Sweep(cfg, oracleDecider(t, sys))
	if err != nil {
		t.Fatal(err)
	}
	// Channel 0 carries no PU: no denials, no estimate.
	if len(results[0].DeniedBlocks) != 0 {
		t.Errorf("channel 0 produced %d denials with no PU", len(results[0].DeniedBlocks))
	}
	if _, ok := results[0].Centroid(wp.Grid); ok {
		t.Error("channel 0 produced a centroid with no denials")
	}
	// Channel 1: the attacker localizes the victim within a couple
	// of blocks.
	truth, err := wp.Grid.Center(victim)
	if err != nil {
		t.Fatal(err)
	}
	dist, ok := LocalizationError(wp.Grid, results[1], truth)
	if !ok {
		t.Fatal("attack produced no estimate on the victim's channel")
	}
	if dist > 25 {
		t.Errorf("localization error %.1f m; the attack should pinpoint the PU within ~2 blocks", dist)
	}
	if results[1].Queries != wp.Grid.Blocks() {
		t.Errorf("queries = %d, want %d", results[1].Queries, wp.Grid.Blocks())
	}
}

// TestAttackWorksIdenticallyThroughPISA quantifies the scoping note
// in DESIGN.md §6: the probing attack sees exactly the same denial
// pattern through the encrypted pipeline as against plaintext WATCH,
// because PISA (by design) hides data from the SDC, not decisions
// from the querying SU.
func TestAttackWorksIdenticallyThroughPISA(t *testing.T) {
	wp := attackParams(t)
	params := pisa.TestParams(wp)
	stp, err := pisa.NewSTP(rand.Reader, params.PaillierBits)
	if err != nil {
		t.Fatal(err)
	}
	sdc, err := pisa.NewSDC("probe-sdc", params, nil, stp)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := watch.NewSystem(wp, nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := geo.BlockID(27)
	sig := wp.Quantize(wp.SMinPUmW)
	eCol, err := sdc.EColumn(victim)
	if err != nil {
		t.Fatal(err)
	}
	pu, err := pisa.NewPU(rand.Reader, "victim", victim, eCol, stp.GroupKey())
	if err != nil {
		t.Fatal(err)
	}
	update, err := pu.Tune(1, sig)
	if err != nil {
		t.Fatal(err)
	}
	if err := sdc.HandlePUUpdate(update); err != nil {
		t.Fatal(err)
	}
	if err := oracle.UpdatePU("victim", watch.Registration{Block: victim, Channel: 1, SignalUnits: sig}); err != nil {
		t.Fatal(err)
	}

	// The attacker's mule SU: re-registered per probe position via
	// fresh SUs would be realistic but slow; a single roaming SU
	// with per-position planners gives the identical decision
	// surface. Coarse stride + one channel keeps the crypto cost
	// sane.
	planner := sdc.Planner()
	pisaDecider := DeciderFunc(func(b geo.BlockID, c int, eirp int64) (bool, error) {
		id := fmt.Sprintf("mule-%d-%d", b, c)
		su, err := pisa.NewSU(rand.Reader, id, b, params, planner, stp.GroupKey())
		if err != nil {
			return false, err
		}
		if err := stp.RegisterSU(su.ID(), su.PublicKey()); err != nil {
			return false, err
		}
		req, err := su.PrepareRequest(map[int]int64{c: eirp}, geo.Disclosure{})
		if err != nil {
			return false, err
		}
		resp, err := sdc.ProcessRequest(req)
		if err != nil {
			return false, err
		}
		grant, err := su.OpenResponse(resp, req, sdc.VerifyKey())
		if err != nil {
			return false, err
		}
		return grant.Granted, nil
	})
	cfg := Config{
		Grid:           wp.Grid,
		Channels:       2,
		ProbeEIRPUnits: wp.Quantize(wp.SUMaxEIRPmW),
		Stride:         4, // 12 probes per channel keeps this test fast
	}
	encResults, err := Sweep(cfg, pisaDecider)
	if err != nil {
		t.Fatal(err)
	}
	plainResults, err := Sweep(cfg, oracleDecider(t, oracle))
	if err != nil {
		t.Fatal(err)
	}
	for c := range encResults {
		if len(encResults[c].DeniedBlocks) != len(plainResults[c].DeniedBlocks) {
			t.Fatalf("channel %d: PISA denial pattern differs from plaintext (%d vs %d)",
				c, len(encResults[c].DeniedBlocks), len(plainResults[c].DeniedBlocks))
		}
		for i := range encResults[c].DeniedBlocks {
			if encResults[c].DeniedBlocks[i] != plainResults[c].DeniedBlocks[i] {
				t.Fatalf("channel %d: denial %d differs", c, i)
			}
		}
	}
	if len(encResults[1].DeniedBlocks) == 0 {
		t.Fatal("attack through PISA saw no denials; fixture broken")
	}
}
