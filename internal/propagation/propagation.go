// Package propagation provides the radio path-loss substrate PISA and
// WATCH compute over: free-space and log-distance reference models,
// the Extended Hata sub-urban model the paper names for E-matrix
// precomputation (§IV-A1), and a deterministic terrain-shadowing
// wrapper standing in for the Longley-Rice irregular terrain model
// (which needs USGS terrain databases that are not available offline;
// see DESIGN.md "Substitutions").
//
// Conventions: path loss is expressed either in dB (positive number,
// larger = more attenuation) or as linear *gain* h(d) in (0, 1], the
// multiplier the paper applies to transmit power: P_rx = P_tx * h(d).
package propagation

import (
	"fmt"
	"math"
)

// Model computes path loss as a function of link geometry.
type Model interface {
	// LossDB returns the path loss in dB over distance d metres.
	// Implementations must be monotonically non-decreasing in d.
	LossDB(dMeters float64) float64
	// Name identifies the model in logs and experiment output.
	Name() string
}

// Gain returns the linear path gain h(d) = 10^(-LossDB/10) for m.
func Gain(m Model, dMeters float64) float64 {
	return math.Pow(10, -m.LossDB(dMeters)/10)
}

// FrequencyAware is implemented by models whose loss depends on the
// carrier frequency; AtFrequency returns a copy retargeted to a new
// frequency. The WATCH planner uses this to derive per-channel
// protection distances d^c across the UHF band (470-700 MHz spans
// about 3 dB of free-space loss).
type FrequencyAware interface {
	Model
	AtFrequency(freqMHz float64) Model
}

// AtFrequency implements FrequencyAware.
func (f FreeSpace) AtFrequency(freqMHz float64) Model {
	f.FreqMHz = freqMHz
	return f
}

// AtFrequency implements FrequencyAware.
func (e ExtendedHata) AtFrequency(freqMHz float64) Model {
	e.FreqMHz = freqMHz
	return e
}

// AtFrequency implements FrequencyAware when the base model does;
// otherwise it returns the shadowed model unchanged.
func (s Shadowed) AtFrequency(freqMHz float64) Model {
	if fa, ok := s.Base.(FrequencyAware); ok {
		s.Base = fa.AtFrequency(freqMHz)
	}
	return s
}

// DBToLinear converts a dB ratio to a linear ratio.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear ratio to dB.
func LinearToDB(lin float64) float64 { return 10 * math.Log10(lin) }

// DBmToMilliwatts converts a power in dBm to milliwatts.
func DBmToMilliwatts(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MilliwattsToDBm converts a power in milliwatts to dBm.
func MilliwattsToDBm(mw float64) float64 { return 10 * math.Log10(mw) }

// FreeSpace is the free-space path loss model
// L = 20 log10(d_km) + 20 log10(f_MHz) + 32.45 dB.
type FreeSpace struct {
	// FreqMHz is the carrier frequency in MHz.
	FreqMHz float64
	// MinDistance clamps very short links so loss never goes
	// negative; defaults to 1 m when zero.
	MinDistance float64
}

// Name implements Model.
func (f FreeSpace) Name() string { return "free-space" }

// LossDB implements Model.
func (f FreeSpace) LossDB(dMeters float64) float64 {
	minD := f.MinDistance
	if minD <= 0 {
		minD = 1
	}
	d := math.Max(dMeters, minD) / 1000 // km
	return 20*math.Log10(d) + 20*math.Log10(f.FreqMHz) + 32.45
}

// LogDistance is the log-distance model
// L = L0 + 10 * n * log10(d / d0), the workhorse for indoor/short-range
// links in the §VI-B simulation.
type LogDistance struct {
	// RefLossDB is the loss L0 at the reference distance.
	RefLossDB float64
	// RefDistance is d0 in metres; defaults to 1 m when zero.
	RefDistance float64
	// Exponent is the path-loss exponent n (2 = free space,
	// 2.7-3.5 typical urban).
	Exponent float64
}

// Name implements Model.
func (l LogDistance) Name() string { return "log-distance" }

// LossDB implements Model.
func (l LogDistance) LossDB(dMeters float64) float64 {
	d0 := l.RefDistance
	if d0 <= 0 {
		d0 = 1
	}
	d := math.Max(dMeters, d0)
	return l.RefLossDB + 10*l.Exponent*math.Log10(d/d0)
}

// ExtendedHata is the Extended Hata model in its sub-urban variant,
// the model the paper cites for SDC E-matrix precomputation. Valid
// nominally for f in 150-2000 MHz, d in 1-20 km; distances below
// MinDistance are clamped (the model diverges as d -> 0).
type ExtendedHata struct {
	// FreqMHz is the carrier frequency in MHz (UHF TV: 470-700).
	FreqMHz float64
	// BaseHeight is the transmitter antenna height h_b in metres.
	BaseHeight float64
	// MobileHeight is the receiver antenna height h_m in metres.
	MobileHeight float64
	// MinDistance clamps short links, metres; defaults to 20 m.
	MinDistance float64
}

// Name implements Model.
func (e ExtendedHata) Name() string { return "extended-hata-suburban" }

// LossDB implements Model.
func (e ExtendedHata) LossDB(dMeters float64) float64 {
	minD := e.MinDistance
	if minD <= 0 {
		minD = 20
	}
	d := math.Max(dMeters, minD) / 1000 // km
	f := e.FreqMHz
	hb := e.BaseHeight
	hm := e.MobileHeight
	// Mobile antenna correction for a small/medium city.
	ahm := (1.1*math.Log10(f)-0.7)*hm - (1.56*math.Log10(f) - 0.8)
	urban := 69.55 + 26.16*math.Log10(f) - 13.82*math.Log10(hb) - ahm +
		(44.9-6.55*math.Log10(hb))*math.Log10(d)
	// Sub-urban correction.
	return urban - 2*math.Pow(math.Log10(f/28), 2) - 5.4
}

// Shadowed decorates a base model with deterministic log-normal
// terrain shadowing: every (x, y) position pair hashes to a stable
// Gaussian offset, so repeated queries for the same link agree. This
// stands in for Longley-Rice terrain effects; see DESIGN.md.
type Shadowed struct {
	// Base is the underlying distance-loss model.
	Base Model
	// SigmaDB is the shadowing standard deviation (6-8 dB typical).
	SigmaDB float64
	// Seed decorrelates independent deployments.
	Seed uint64
	// LinkKey distinguishes links at equal distance; callers set it
	// per (tx block, rx block) pair. Zero is a valid key.
	LinkKey uint64
}

// Name implements Model.
func (s Shadowed) Name() string { return s.Base.Name() + "+shadowing" }

// LossDB implements Model.
func (s Shadowed) LossDB(dMeters float64) float64 {
	base := s.Base.LossDB(dMeters)
	offset := s.SigmaDB * gaussianHash(s.Seed, s.LinkKey)
	loss := base + offset
	// Shadowing never turns a lossy link into an amplifier.
	return math.Max(loss, 0)
}

// gaussianHash maps (seed, key) to a deterministic standard-normal
// sample via splitmix64 and Box-Muller.
func gaussianHash(seed, key uint64) float64 {
	u1 := float64(splitmix64(seed^0x9e3779b97f4a7c15^key)>>11) / (1 << 53)
	u2 := float64(splitmix64(seed+key*0xbf58476d1ce4e5b9)>>11) / (1 << 53)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// splitmix64 is the SplitMix64 mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ProtectionDistance solves equation (1) of the paper: the distance
// d^c within which SU EIRP must be constrained, defined implicitly by
//
//	deltaSINR + deltaRedn = S_min^PU / (S_max^SU * h_max(d^c))
//
// i.e. the largest distance at which a maximum-power SU could still
// push the PU below its protection ratio. All powers in milliwatts,
// ratios linear. worst is the h_max model (maximum gain over a given
// distance, i.e. minimum loss). Returns the smallest distance d such
// that Gain(worst, d) <= sMinPU / (sMaxSU * (deltaSINR + deltaRedn)),
// found by exponential search plus bisection over the monotone model.
func ProtectionDistance(worst Model, sMinPU, sMaxSU, deltaSINR, deltaRedn float64) (float64, error) {
	if sMinPU <= 0 || sMaxSU <= 0 || deltaSINR <= 0 || deltaRedn < 0 {
		return 0, fmt.Errorf("propagation: non-positive parameter in protection distance (sMin=%g sMax=%g sinr=%g redn=%g)",
			sMinPU, sMaxSU, deltaSINR, deltaRedn)
	}
	target := sMinPU / (sMaxSU * (deltaSINR + deltaRedn))
	if Gain(worst, 0) <= target {
		// Even a co-located max-power SU cannot harm the PU.
		return 0, nil
	}
	// Exponential search for an upper bound.
	hi := 1.0
	for Gain(worst, hi) > target {
		hi *= 2
		if hi > 1e9 {
			return 0, fmt.Errorf("propagation: protection distance exceeds 1e9 m (target gain %g unreachable)", target)
		}
	}
	lo := hi / 2
	for i := 0; i < 80 && hi-lo > 1e-6; i++ {
		mid := (lo + hi) / 2
		if Gain(worst, mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}
