package propagation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUnitConversionsRoundTrip(t *testing.T) {
	prop := func(raw int16) bool {
		db := float64(raw) / 100 // -327..327 dB
		back := LinearToDB(DBToLinear(db))
		return math.Abs(back-db) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if got := DBmToMilliwatts(0); got != 1 {
		t.Errorf("0 dBm = %g mW, want 1", got)
	}
	if got := DBmToMilliwatts(30); math.Abs(got-1000) > 1e-9 {
		t.Errorf("30 dBm = %g mW, want 1000", got)
	}
	if got := MilliwattsToDBm(100); math.Abs(got-20) > 1e-9 {
		t.Errorf("100 mW = %g dBm, want 20", got)
	}
}

func TestFreeSpaceKnownValue(t *testing.T) {
	// FSPL at 1 km, 2437 MHz (WiFi channel 6) is about 100.2 dB.
	m := FreeSpace{FreqMHz: 2437}
	got := m.LossDB(1000)
	if math.Abs(got-100.2) > 0.3 {
		t.Errorf("FSPL(1 km, 2437 MHz) = %g dB, want about 100.2", got)
	}
	// Doubling distance adds 6.02 dB.
	d1, d2 := m.LossDB(2000), m.LossDB(1000)
	if math.Abs((d1-d2)-6.02) > 0.01 {
		t.Errorf("doubling distance added %g dB, want about 6.02", d1-d2)
	}
}

func TestFreeSpaceClampsShortLinks(t *testing.T) {
	m := FreeSpace{FreqMHz: 600}
	if m.LossDB(0) != m.LossDB(1) {
		t.Error("0 m not clamped to MinDistance")
	}
	if m.LossDB(0.5) != m.LossDB(1) {
		t.Error("0.5 m not clamped to MinDistance")
	}
}

func TestLogDistanceExponent(t *testing.T) {
	m := LogDistance{RefLossDB: 40, RefDistance: 1, Exponent: 3}
	if got := m.LossDB(1); got != 40 {
		t.Errorf("loss at d0 = %g, want 40", got)
	}
	// Each decade adds 10*n dB.
	if got := m.LossDB(10) - m.LossDB(1); math.Abs(got-30) > 1e-9 {
		t.Errorf("decade delta = %g, want 30", got)
	}
	if got := m.LossDB(100) - m.LossDB(10); math.Abs(got-30) > 1e-9 {
		t.Errorf("second decade delta = %g, want 30", got)
	}
}

func TestModelsMonotoneInDistance(t *testing.T) {
	models := []Model{
		FreeSpace{FreqMHz: 600},
		LogDistance{RefLossDB: 40, Exponent: 2.8},
		ExtendedHata{FreqMHz: 600, BaseHeight: 100, MobileHeight: 10},
	}
	for _, m := range models {
		prev := math.Inf(-1)
		for d := 1.0; d < 50000; d *= 1.5 {
			l := m.LossDB(d)
			if l < prev-1e-9 {
				t.Errorf("%s: loss decreased from %g to %g at d=%g", m.Name(), prev, l, d)
			}
			prev = l
		}
	}
}

func TestExtendedHataPlausibleRange(t *testing.T) {
	// Published Hata sub-urban values for f=600 MHz, hb=100 m,
	// hm=1.5 m sit near 105-150 dB over 1-20 km.
	m := ExtendedHata{FreqMHz: 600, BaseHeight: 100, MobileHeight: 1.5}
	l1 := m.LossDB(1000)
	l20 := m.LossDB(20000)
	if l1 < 90 || l1 > 130 {
		t.Errorf("loss at 1 km = %g dB, outside plausible 90-130", l1)
	}
	if l20 < 130 || l20 > 180 {
		t.Errorf("loss at 20 km = %g dB, outside plausible 130-180", l20)
	}
	if l20 <= l1 {
		t.Error("loss not increasing 1 km -> 20 km")
	}
}

func TestGainInUnitInterval(t *testing.T) {
	m := ExtendedHata{FreqMHz: 600, BaseHeight: 100, MobileHeight: 10}
	for d := 10.0; d < 1e5; d *= 3 {
		g := Gain(m, d)
		if g <= 0 || g > 1 {
			t.Errorf("gain at %g m = %g, outside (0, 1]", d, g)
		}
	}
}

func TestShadowedDeterministic(t *testing.T) {
	base := FreeSpace{FreqMHz: 600}
	a := Shadowed{Base: base, SigmaDB: 8, Seed: 42, LinkKey: 7}
	b := Shadowed{Base: base, SigmaDB: 8, Seed: 42, LinkKey: 7}
	if a.LossDB(500) != b.LossDB(500) {
		t.Error("same (seed, key) produced different shadowing")
	}
	c := Shadowed{Base: base, SigmaDB: 8, Seed: 42, LinkKey: 8}
	if a.LossDB(500) == c.LossDB(500) {
		t.Error("different keys produced identical shadowing (collision suspicious)")
	}
}

func TestShadowedNeverNegative(t *testing.T) {
	base := LogDistance{RefLossDB: 1, Exponent: 2}
	for key := uint64(0); key < 200; key++ {
		s := Shadowed{Base: base, SigmaDB: 30, Seed: 1, LinkKey: key}
		if l := s.LossDB(1); l < 0 {
			t.Fatalf("shadowed loss went negative: %g (key %d)", l, key)
		}
	}
}

func TestShadowingDistributionRoughlyCentred(t *testing.T) {
	base := FreeSpace{FreqMHz: 600}
	raw := base.LossDB(1000)
	var sum, sumSq float64
	const n = 2000
	for key := uint64(0); key < n; key++ {
		s := Shadowed{Base: base, SigmaDB: 8, Seed: 99, LinkKey: key}
		d := s.LossDB(1000) - raw
		sum += d
		sumSq += d * d
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 1 {
		t.Errorf("shadowing mean = %g dB, want about 0", mean)
	}
	if std < 6 || std > 10 {
		t.Errorf("shadowing std = %g dB, want about 8", std)
	}
}

func TestProtectionDistanceMonotoneInThreshold(t *testing.T) {
	m := ExtendedHata{FreqMHz: 600, BaseHeight: 30, MobileHeight: 10, MinDistance: 10}
	d1, err := ProtectionDistance(m, 1e-6, 4000, 15, 3)
	if err != nil {
		t.Fatalf("ProtectionDistance: %v", err)
	}
	// A more sensitive PU (lower minimum signal => lower target gain?)
	// Actually: lower sMinPU lowers the target gain, pushing the
	// protection distance outward.
	d2, err := ProtectionDistance(m, 1e-8, 4000, 15, 3)
	if err != nil {
		t.Fatalf("ProtectionDistance: %v", err)
	}
	if d2 <= d1 {
		t.Errorf("more sensitive PU got smaller exclusion: %g <= %g", d2, d1)
	}
}

func TestProtectionDistanceSatisfiesDefinition(t *testing.T) {
	m := FreeSpace{FreqMHz: 600}
	sMin, sMax, sinr, redn := 1e-5, 4000.0, 15.0, 3.0
	d, err := ProtectionDistance(m, sMin, sMax, sinr, redn)
	if err != nil {
		t.Fatalf("ProtectionDistance: %v", err)
	}
	target := sMin / (sMax * (sinr + redn))
	if g := Gain(m, d); g > target*(1+1e-6) {
		t.Errorf("gain at returned distance %g = %g > target %g", d, g, target)
	}
	if d > 1 {
		if g := Gain(m, d*0.99); g <= target {
			t.Errorf("distance not minimal: gain just inside = %g <= target %g", g, target)
		}
	}
}

func TestProtectionDistanceZeroWhenHarmless(t *testing.T) {
	// Enormous loss at any distance: SU can never harm the PU.
	m := LogDistance{RefLossDB: 300, Exponent: 4}
	d, err := ProtectionDistance(m, 1, 1, 1, 0)
	if err != nil {
		t.Fatalf("ProtectionDistance: %v", err)
	}
	if d != 0 {
		t.Errorf("harmless SU got protection distance %g, want 0", d)
	}
}

func TestProtectionDistanceRejectsBadParams(t *testing.T) {
	m := FreeSpace{FreqMHz: 600}
	bad := [][4]float64{
		{0, 1, 1, 0},
		{1, 0, 1, 0},
		{1, 1, 0, 0},
		{1, 1, 1, -1},
	}
	for _, p := range bad {
		if _, err := ProtectionDistance(m, p[0], p[1], p[2], p[3]); err == nil {
			t.Errorf("params %v accepted", p)
		}
	}
}

func TestAtFrequency(t *testing.T) {
	fs := FreeSpace{FreqMHz: 470}
	hi := fs.AtFrequency(700)
	if hi.LossDB(1000) <= fs.LossDB(1000) {
		t.Error("raising frequency did not raise free-space loss")
	}
	eh := ExtendedHata{FreqMHz: 470, BaseHeight: 100, MobileHeight: 1.5}
	ehHi := eh.AtFrequency(700)
	if ehHi.LossDB(5000) <= eh.LossDB(5000) {
		t.Error("raising frequency did not raise Hata loss")
	}
	// Shadowed wrapper retargets its base and keeps the offset
	// deterministic.
	sh := Shadowed{Base: fs, SigmaDB: 6, Seed: 3, LinkKey: 9}
	shHi, ok := sh.AtFrequency(700).(Shadowed)
	if !ok {
		t.Fatal("Shadowed.AtFrequency lost the wrapper")
	}
	if shHi.LossDB(1000)-sh.LossDB(1000) <= 0 {
		t.Error("shadowed loss did not rise with frequency")
	}
	// Frequency-blind base passes through unchanged.
	blind := Shadowed{Base: LogDistance{RefLossDB: 40, Exponent: 3}, SigmaDB: 6}
	if got := blind.AtFrequency(700).(Shadowed); got.LossDB(100) != blind.LossDB(100) {
		t.Error("frequency-blind base changed under AtFrequency")
	}
}
