// Package seccmp implements the bit-wise secure integer comparison
// PISA deliberately avoids (§IV-B cites [12, 13, 18] as the
// alternatives). It exists as an ablation baseline: the benchmark
// harness compares its cost — per value, l ciphertexts and an
// interactive boolean circuit — against PISA's single-ciphertext
// blinded sign test.
//
// Model: an evaluator (the SDC) holds values encrypted bit by bit
// under the helper's (the STP's) Paillier key. Additions are free
// (homomorphic); multiplications of two ciphertexts require one round
// trip to the helper using the standard blinded-product gadget:
//
//	Enc(a*b) = Reenc((a+ra)*(b+rb)) - ra*Enc(b) - rb*Enc(a) - ra*rb
//
// so the helper sees only uniformly blinded values. XOR/AND/OR over
// encrypted bits follow, and a divide-and-conquer comparator gives
// x > y in O(l) interactive multiplications of depth O(log l).
package seccmp

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"

	"pisa/internal/paillier"
)

// Helper is the decrypting party of the multiplication gadget (the
// STP role in the ablation).
type Helper struct {
	key    *paillier.PrivateKey
	random io.Reader
}

// NewHelper wraps the key-holding party.
func NewHelper(random io.Reader, key *paillier.PrivateKey) *Helper {
	if random == nil {
		random = rand.Reader
	}
	return &Helper{key: key, random: random}
}

// PublicKey returns the helper's Paillier public key.
func (h *Helper) PublicKey() *paillier.PublicKey { return h.key.Public() }

// MulBlinded decrypts the two blinded operands and returns an
// encryption of their product. The operands are uniformly blinded by
// the evaluator, so nothing about a or b leaks.
func (h *Helper) MulBlinded(ca, cb *paillier.Ciphertext) (*paillier.Ciphertext, error) {
	a, err := h.key.Decrypt(ca)
	if err != nil {
		return nil, fmt.Errorf("seccmp: helper decrypt a: %w", err)
	}
	b, err := h.key.Decrypt(cb)
	if err != nil {
		return nil, fmt.Errorf("seccmp: helper decrypt b: %w", err)
	}
	prod := new(big.Int).Mul(a, b)
	ct, err := h.key.PublicKey.Encrypt(h.random, prod)
	if err != nil {
		return nil, fmt.Errorf("seccmp: helper encrypt product: %w", err)
	}
	return ct, nil
}

// Stats counts protocol cost for the benchmark harness.
type Stats struct {
	// Rounds is the number of evaluator-to-helper round trips.
	Rounds int
	// HomOps counts homomorphic operations on the evaluator.
	HomOps int
}

// Evaluator is the computing party (the SDC role): it sees only
// ciphertexts and drives the comparison circuit.
type Evaluator struct {
	pk     *paillier.PublicKey
	helper *Helper
	random io.Reader
	// blindBits sizes the additive blinding of the product gadget.
	blindBits int

	// Stats accumulates protocol cost; reset it between
	// measurements.
	Stats Stats
}

// NewEvaluator pairs an evaluator with its helper. blindBits controls
// the statistical hiding of the product gadget (64-80 typical for a
// bit domain).
func NewEvaluator(random io.Reader, helper *Helper, blindBits int) (*Evaluator, error) {
	if helper == nil {
		return nil, fmt.Errorf("seccmp: evaluator requires a helper")
	}
	if blindBits < 8 {
		return nil, fmt.Errorf("seccmp: blindBits %d too small", blindBits)
	}
	if random == nil {
		random = rand.Reader
	}
	return &Evaluator{
		pk:        helper.PublicKey(),
		helper:    helper,
		random:    random,
		blindBits: blindBits,
	}, nil
}

// EncryptBits encrypts the low width bits of v (little endian) under
// the helper's key — the input format this protocol forces on PUs and
// SUs, l ciphertexts per value instead of PISA's one.
func (e *Evaluator) EncryptBits(v uint64, width int) ([]*paillier.Ciphertext, error) {
	if width <= 0 || width > 64 {
		return nil, fmt.Errorf("seccmp: width %d outside [1, 64]", width)
	}
	out := make([]*paillier.Ciphertext, width)
	for i := 0; i < width; i++ {
		ct, err := e.pk.EncryptInt(e.random, int64((v>>uint(i))&1))
		if err != nil {
			return nil, err
		}
		out[i] = ct
	}
	return out, nil
}

// Mul returns Enc(a*b) via one blinded round trip to the helper.
func (e *Evaluator) Mul(ca, cb *paillier.Ciphertext) (*paillier.Ciphertext, error) {
	limit := new(big.Int).Lsh(big.NewInt(1), uint(e.blindBits))
	ra, err := paillier.RandomInRange(e.random, big.NewInt(0), limit)
	if err != nil {
		return nil, err
	}
	rb, err := paillier.RandomInRange(e.random, big.NewInt(0), limit)
	if err != nil {
		return nil, err
	}
	blindA, err := e.pk.AddPlain(ca, ra)
	if err != nil {
		return nil, err
	}
	blindB, err := e.pk.AddPlain(cb, rb)
	if err != nil {
		return nil, err
	}
	e.Stats.Rounds++
	e.Stats.HomOps += 2
	prod, err := e.helper.MulBlinded(blindA, blindB)
	if err != nil {
		return nil, err
	}
	// Unblind: prod - ra*b - rb*a - ra*rb.
	raB, err := e.pk.ScalarMul(ra, cb)
	if err != nil {
		return nil, err
	}
	rbA, err := e.pk.ScalarMul(rb, ca)
	if err != nil {
		return nil, err
	}
	out, err := e.pk.Sub(prod, raB)
	if err != nil {
		return nil, err
	}
	if out, err = e.pk.Sub(out, rbA); err != nil {
		return nil, err
	}
	rarb := new(big.Int).Mul(ra, rb)
	if out, err = e.pk.AddPlain(out, new(big.Int).Neg(rarb)); err != nil {
		return nil, err
	}
	e.Stats.HomOps += 5
	return out, nil
}

// Xor returns Enc(a XOR b) = Enc(a + b - 2ab); one interactive Mul.
func (e *Evaluator) Xor(ca, cb *paillier.Ciphertext) (*paillier.Ciphertext, error) {
	ab, err := e.Mul(ca, cb)
	if err != nil {
		return nil, err
	}
	sum, err := e.pk.Add(ca, cb)
	if err != nil {
		return nil, err
	}
	twoAB, err := e.pk.ScalarMulInt(2, ab)
	if err != nil {
		return nil, err
	}
	e.Stats.HomOps += 3
	return e.pk.Sub(sum, twoAB)
}

// Not returns Enc(1 - a).
func (e *Evaluator) Not(ca *paillier.Ciphertext) (*paillier.Ciphertext, error) {
	neg, err := e.pk.ScalarMulInt(-1, ca)
	if err != nil {
		return nil, err
	}
	e.Stats.HomOps += 2
	return e.pk.AddPlain(neg, big.NewInt(1))
}

// Or returns Enc(a OR b) = Enc(a + b - ab); one interactive Mul.
func (e *Evaluator) Or(ca, cb *paillier.Ciphertext) (*paillier.Ciphertext, error) {
	ab, err := e.Mul(ca, cb)
	if err != nil {
		return nil, err
	}
	sum, err := e.pk.Add(ca, cb)
	if err != nil {
		return nil, err
	}
	e.Stats.HomOps += 2
	return e.pk.Sub(sum, ab)
}

// GreaterThan evaluates Enc(x > y) over little-endian encrypted bit
// vectors with a balanced divide-and-conquer network; O(len)
// interactive multiplications.
func (e *Evaluator) GreaterThan(x, y []*paillier.Ciphertext) (*paillier.Ciphertext, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("seccmp: operand widths differ (%d vs %d)", len(x), len(y))
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("seccmp: empty operands")
	}
	gt, _, err := e.compareRange(x, y)
	return gt, err
}

func (e *Evaluator) compareRange(x, y []*paillier.Ciphertext) (gt, eq *paillier.Ciphertext, err error) {
	if len(x) == 1 {
		ny, err := e.Not(y[0])
		if err != nil {
			return nil, nil, err
		}
		g, err := e.Mul(x[0], ny) // x AND NOT y
		if err != nil {
			return nil, nil, err
		}
		xor, err := e.Xor(x[0], y[0])
		if err != nil {
			return nil, nil, err
		}
		eqBit, err := e.Not(xor)
		if err != nil {
			return nil, nil, err
		}
		return g, eqBit, nil
	}
	mid := len(x) / 2
	loGT, loEQ, err := e.compareRange(x[:mid], y[:mid])
	if err != nil {
		return nil, nil, err
	}
	hiGT, hiEQ, err := e.compareRange(x[mid:], y[mid:])
	if err != nil {
		return nil, nil, err
	}
	carry, err := e.Mul(hiEQ, loGT)
	if err != nil {
		return nil, nil, err
	}
	g, err := e.Or(hiGT, carry)
	if err != nil {
		return nil, nil, err
	}
	eqBoth, err := e.Mul(hiEQ, loEQ)
	if err != nil {
		return nil, nil, err
	}
	return g, eqBoth, nil
}

// Equal evaluates Enc(x == y) over little-endian encrypted bit
// vectors: the AND of per-bit equalities. This is the bit-wise secure
// *equality* test PISA's offset encoding of eq. 4 avoids (deciding
// T'(c, b) == 0 without ever comparing).
func (e *Evaluator) Equal(x, y []*paillier.Ciphertext) (*paillier.Ciphertext, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("seccmp: operand widths differ (%d vs %d)", len(x), len(y))
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("seccmp: empty operands")
	}
	_, eq, err := e.compareRange(x, y)
	return eq, err
}

// DecryptBit is a test helper: open a result bit with the helper's
// key.
func DecryptBit(h *Helper, ct *paillier.Ciphertext) (int, error) {
	v, err := h.key.DecryptInt(ct)
	if err != nil {
		return 0, err
	}
	if v != 0 && v != 1 {
		return 0, fmt.Errorf("seccmp: result %d is not a bit", v)
	}
	return int(v), nil
}
