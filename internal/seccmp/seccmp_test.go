package seccmp

import (
	"crypto/rand"
	mrand "math/rand"
	"sync"
	"testing"

	"pisa/internal/paillier"
)

var fixture = sync.OnceValue(func() *Helper {
	sk, err := paillier.GenerateKey(rand.Reader, 512)
	if err != nil {
		panic(err)
	}
	return NewHelper(rand.Reader, sk)
})

func newEval(t *testing.T) *Evaluator {
	t.Helper()
	e, err := NewEvaluator(rand.Reader, fixture(), 64)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEvaluatorValidation(t *testing.T) {
	if _, err := NewEvaluator(rand.Reader, nil, 64); err == nil {
		t.Error("nil helper accepted")
	}
	if _, err := NewEvaluator(rand.Reader, fixture(), 4); err == nil {
		t.Error("tiny blinding accepted")
	}
}

func TestMulMatchesPlaintext(t *testing.T) {
	e := newEval(t)
	h := fixture()
	for _, pair := range [][2]int64{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {3, 7}, {-2, 5}} {
		ca, err := e.pk.EncryptInt(rand.Reader, pair[0])
		if err != nil {
			t.Fatal(err)
		}
		cb, err := e.pk.EncryptInt(rand.Reader, pair[1])
		if err != nil {
			t.Fatal(err)
		}
		prod, err := e.Mul(ca, cb)
		if err != nil {
			t.Fatalf("Mul: %v", err)
		}
		got, err := h.key.DecryptInt(prod)
		if err != nil {
			t.Fatal(err)
		}
		if got != pair[0]*pair[1] {
			t.Errorf("Mul(%d, %d) = %d", pair[0], pair[1], got)
		}
	}
}

func TestGateTruthTables(t *testing.T) {
	e := newEval(t)
	h := fixture()
	enc := func(b int64) *paillier.Ciphertext {
		t.Helper()
		ct, err := e.pk.EncryptInt(rand.Reader, b)
		if err != nil {
			t.Fatal(err)
		}
		return ct
	}
	dec := func(ct *paillier.Ciphertext) int {
		t.Helper()
		v, err := DecryptBit(h, ct)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	for a := int64(0); a <= 1; a++ {
		for b := int64(0); b <= 1; b++ {
			ca, cb := enc(a), enc(b)
			if xor, err := e.Xor(ca, cb); err != nil {
				t.Fatal(err)
			} else if got := dec(xor); got != int(a^b) {
				t.Errorf("XOR(%d, %d) = %d", a, b, got)
			}
			if or, err := e.Or(ca, cb); err != nil {
				t.Fatal(err)
			} else if got := dec(or); got != int(a|b) {
				t.Errorf("OR(%d, %d) = %d", a, b, got)
			}
		}
		if not, err := e.Not(enc(a)); err != nil {
			t.Fatal(err)
		} else if got := dec(not); got != int(1-a) {
			t.Errorf("NOT(%d) = %d", a, got)
		}
	}
}

func TestGreaterThanMatchesPlaintext(t *testing.T) {
	e := newEval(t)
	h := fixture()
	rng := mrand.New(mrand.NewSource(5))
	const width = 8
	for trial := 0; trial < 8; trial++ {
		x := uint64(rng.Intn(256))
		y := uint64(rng.Intn(256))
		ex, err := e.EncryptBits(x, width)
		if err != nil {
			t.Fatal(err)
		}
		ey, err := e.EncryptBits(y, width)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.GreaterThan(ex, ey)
		if err != nil {
			t.Fatalf("GreaterThan: %v", err)
		}
		got, err := DecryptBit(h, res)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		if x > y {
			want = 1
		}
		if got != want {
			t.Fatalf("GT(%d, %d) = %d, want %d", x, y, got, want)
		}
	}
}

func TestGreaterThanEdgeCases(t *testing.T) {
	e := newEval(t)
	h := fixture()
	for _, tc := range [][2]uint64{{0, 0}, {15, 15}, {0, 15}, {15, 0}, {8, 7}} {
		ex, err := e.EncryptBits(tc[0], 4)
		if err != nil {
			t.Fatal(err)
		}
		ey, err := e.EncryptBits(tc[1], 4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.GreaterThan(ex, ey)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecryptBit(h, res)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		if tc[0] > tc[1] {
			want = 1
		}
		if got != want {
			t.Errorf("GT(%d, %d) = %d, want %d", tc[0], tc[1], got, want)
		}
	}
}

func TestStatsCountRounds(t *testing.T) {
	e := newEval(t)
	ex, err := e.EncryptBits(200, 8)
	if err != nil {
		t.Fatal(err)
	}
	ey, err := e.EncryptBits(100, 8)
	if err != nil {
		t.Fatal(err)
	}
	e.Stats = Stats{}
	if _, err := e.GreaterThan(ex, ey); err != nil {
		t.Fatal(err)
	}
	// The 8-bit tree costs at least one interactive multiplication
	// per leaf pair plus per combine: well over 8 rounds. This is
	// exactly the overhead PISA's design avoids.
	if e.Stats.Rounds < 8 {
		t.Errorf("Rounds = %d, expected the bit-wise protocol to need many round trips", e.Stats.Rounds)
	}
	if e.Stats.HomOps <= e.Stats.Rounds {
		t.Errorf("HomOps = %d should exceed Rounds = %d", e.Stats.HomOps, e.Stats.Rounds)
	}
}

func TestValidation(t *testing.T) {
	e := newEval(t)
	bits, err := e.EncryptBits(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.GreaterThan(bits, bits[:2]); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, err := e.GreaterThan(nil, nil); err == nil {
		t.Error("empty operands accepted")
	}
	if _, err := e.EncryptBits(5, 0); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := e.EncryptBits(5, 65); err == nil {
		t.Error("width 65 accepted")
	}
}

func TestEqualMatchesPlaintext(t *testing.T) {
	e := newEval(t)
	h := fixture()
	for _, tc := range [][2]uint64{{5, 5}, {5, 6}, {0, 0}, {0, 15}, {15, 15}, {9, 8}} {
		ex, err := e.EncryptBits(tc[0], 4)
		if err != nil {
			t.Fatal(err)
		}
		ey, err := e.EncryptBits(tc[1], 4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Equal(ex, ey)
		if err != nil {
			t.Fatalf("Equal: %v", err)
		}
		got, err := DecryptBit(h, res)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		if tc[0] == tc[1] {
			want = 1
		}
		if got != want {
			t.Errorf("EQ(%d, %d) = %d, want %d", tc[0], tc[1], got, want)
		}
	}
	if _, err := e.Equal(nil, nil); err == nil {
		t.Error("empty operands accepted")
	}
}
