package store

import (
	"crypto/rand"
	"fmt"
	"testing"
)

// Paper-scale sizing: one PU update record carries C = 100 channel
// ciphertexts of 2x2048 bits plus framing — about 52 KB of gob. The
// benchmarks use a synthetic payload of that magnitude so append,
// snapshot and replay costs reflect the production record size.
const benchRecordBytes = 52 << 10

// benchSnapshotBytes approximates a full paper-scale SDC snapshot:
// the 100 x 600 budget matrix at 512 bytes per ciphertext plus the
// stored PU columns — tens of megabytes; 16 MiB keeps the benchmark
// honest without thrashing CI disks.
const benchSnapshotBytes = 16 << 20

func benchPayload(b *testing.B, n int) []byte {
	b.Helper()
	p := make([]byte, n)
	if _, err := rand.Read(p); err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkStore_Append(b *testing.B) {
	for _, policy := range []FsyncPolicy{FsyncNever, FsyncInterval, FsyncAlways} {
		b.Run(policy.String(), func(b *testing.B) {
			s, err := Open(b.TempDir(), Options{Fsync: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			payload := benchPayload(b, benchRecordBytes)
			b.SetBytes(benchRecordBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Append(1, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStore_Snapshot(b *testing.B) {
	s, err := Open(b.TempDir(), Options{Fsync: FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	state := benchPayload(b, benchSnapshotBytes)
	b.SetBytes(benchSnapshotBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Append(1, []byte("tick")); err != nil {
			b.Fatal(err)
		}
		if err := s.SaveSnapshot(state); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStore_Replay measures Open (recovery) against WALs of
// increasing length — the recovery-time-vs-WAL-length curve recorded
// in EXPERIMENTS.md.
func BenchmarkStore_Replay(b *testing.B) {
	for _, records := range []int{16, 128, 1024} {
		b.Run(fmt.Sprintf("records-%d", records), func(b *testing.B) {
			dir := b.TempDir()
			s, err := Open(dir, Options{Fsync: FsyncNever})
			if err != nil {
				b.Fatal(err)
			}
			payload := benchPayload(b, benchRecordBytes)
			for i := 0; i < records; i++ {
				if _, err := s.Append(1, payload); err != nil {
					b.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(records) * benchRecordBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := Open(dir, Options{})
				if err != nil {
					b.Fatal(err)
				}
				if got := len(r.Tail()); got != records {
					b.Fatalf("replayed %d, want %d", got, records)
				}
				r.Close()
			}
		})
	}
}
