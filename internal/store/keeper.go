package store

import (
	"fmt"
	"sync"
	"time"
)

// Keeper ties a Store to an application export function and runs the
// snapshot policy: capture a snapshot once enough records accumulate
// or enough time passes with unsnapshotted records.
//
// It also closes the one correctness gap between the two layers:
// exporting application state and persisting it as a snapshot are two
// separate steps, and a WAL append slipping between them would be
// compacted away without being part of the exported state — silent
// data loss on the next recovery. Keeper.Append and Keeper.Snapshot
// share a mutex so an append lands either before the export (included
// in the snapshot; its late WAL record replays idempotently) or after
// the compaction (captured by the fresh WAL).
type Keeper struct {
	store     *Store
	export    func() ([]byte, error)
	interval  time.Duration
	threshold uint64

	mu       sync.Mutex // serialises appends against export+save
	lastSnap time.Time

	stop chan struct{}
	done chan struct{}
}

// NewKeeper wires a store to a state exporter. interval and threshold
// of zero disable the respective trigger; Start is a no-op when both
// are disabled.
func NewKeeper(st *Store, export func() ([]byte, error), interval time.Duration, threshold uint64) *Keeper {
	return &Keeper{store: st, export: export, interval: interval, threshold: threshold, lastSnap: time.Now()}
}

// Append journals one record through the snapshot-consistency lock.
// Use this, not Store.Append, for every record the exporter's state
// reflects.
func (k *Keeper) Append(t RecordType, payload []byte) (uint64, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.store.Append(t, payload)
}

// Snapshot exports the application state and persists it, compacting
// the WAL. Appends block for the duration, so the export function
// should capture cheaply (copy pointers, encode outside locks).
func (k *Keeper) Snapshot() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	state, err := k.export()
	if err != nil {
		return fmt.Errorf("store: export state for snapshot: %w", err)
	}
	if err := k.store.SaveSnapshot(state); err != nil {
		return err
	}
	k.lastSnap = time.Now()
	return nil
}

// Start launches the background snapshot loop. Call Stop to halt it.
// Snapshot errors are reported through the errs callback (nil to
// discard) and retried at the next trigger.
func (k *Keeper) Start(errs func(error)) {
	if k.stop != nil || (k.interval <= 0 && k.threshold == 0) {
		return
	}
	k.stop = make(chan struct{})
	k.done = make(chan struct{})
	go k.loop(errs)
}

func (k *Keeper) loop(errs func(error)) {
	defer close(k.done)
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-k.stop:
			return
		case <-tick.C:
		}
		pending := k.store.Stats().RecordsSinceSnapshot
		if pending == 0 {
			continue
		}
		due := k.threshold > 0 && pending >= k.threshold
		k.mu.Lock()
		elapsed := time.Since(k.lastSnap)
		k.mu.Unlock()
		if !due && (k.interval <= 0 || elapsed < k.interval) {
			continue
		}
		if err := k.Snapshot(); err != nil && errs != nil {
			errs(err)
		}
	}
}

// Stop halts the background loop and waits for it to exit. Safe to
// call when Start never ran.
func (k *Keeper) Stop() {
	if k.stop == nil {
		return
	}
	close(k.stop)
	<-k.done
	k.stop = nil
}
