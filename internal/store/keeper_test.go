package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestKeeperThresholdSnapshot(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var exports atomic.Int64
	k := NewKeeper(s, func() ([]byte, error) {
		exports.Add(1)
		return []byte("state"), nil
	}, 0, 3)
	k.Start(func(err error) { t.Error(err) })
	defer k.Stop()

	for i := 0; i < 3; i++ {
		if _, err := k.Append(1, []byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().SnapshotIndex != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("no snapshot after threshold; stats %+v", s.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if exports.Load() == 0 {
		t.Fatal("snapshot taken without calling the exporter")
	}
	if s.Stats().RecordsSinceSnapshot != 0 {
		t.Fatalf("records not compacted: %+v", s.Stats())
	}
}

func TestKeeperAppendsDuringSnapshotNotLost(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	// The exporter reports how many records it has "seen"; concurrent
	// appends bump the counter through the keeper. After the snapshot
	// plus the surviving WAL tail, no acknowledged append may vanish.
	var mu sync.Mutex
	seen := 0
	k := NewKeeper(s, func() ([]byte, error) {
		mu.Lock()
		defer mu.Unlock()
		return []byte(fmt.Sprintf("%d", seen)), nil
	}, 0, 0)

	var wg sync.WaitGroup
	appended := make([]int, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				mu.Lock()
				seen++
				mu.Unlock()
				if _, err := k.Append(1, []byte("r")); err != nil {
					t.Error(err)
					return
				}
				appended[g]++
			}
		}(g)
	}
	for i := 0; i < 5; i++ {
		if err := k.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var inSnapshot int
	if _, err := fmt.Sscanf(string(r.SnapshotData()), "%d", &inSnapshot); err != nil {
		t.Fatalf("snapshot payload %q: %v", r.SnapshotData(), err)
	}
	total := 0
	for _, n := range appended {
		total += n
	}
	// Every acknowledged append must be covered by the snapshot or
	// replayed from the tail. (Snapshot may cover more than its counter
	// says — an append between counter bump and WAL write replays
	// idempotently — but never fewer.)
	if inSnapshot+r.Recovery().TailRecords < total {
		t.Fatalf("recovered %d (snapshot) + %d (tail) < %d appended",
			inSnapshot, r.Recovery().TailRecords, total)
	}
}

func TestKeeperStopWithoutStart(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := NewKeeper(s, func() ([]byte, error) { return nil, nil }, 0, 0)
	k.Start(nil) // both triggers disabled: no-op
	k.Stop()
}
