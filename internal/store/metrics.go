package store

import (
	"sync"

	"pisa/internal/obs"
)

// storeMetrics instruments the durability hot path. All Store
// instances in a process share the series: a daemon opens exactly one
// store, and tests that open several just aggregate.
type storeMetrics struct {
	appendSeconds *obs.Histogram
	appendBytes   *obs.Counter
	fsyncSeconds  *obs.Histogram
	snapSeconds   *obs.Histogram
	snapBytes     *obs.Gauge

	appendErrs *obs.Counter
	fsyncErrs  *obs.Counter
	snapErrs   *obs.Counter
}

var (
	storeMetricsOnce sync.Once
	storeM           *storeMetrics
)

func smetrics() *storeMetrics {
	storeMetricsOnce.Do(func() {
		r := obs.Default()
		errs := func(op string) *obs.Counter {
			return r.Counter("pisa_store_errors_total",
				"durability operations that failed", obs.Labels{"op": op})
		}
		storeM = &storeMetrics{
			appendSeconds: r.Histogram("pisa_store_wal_append_seconds",
				"one WAL record append (frame + write, plus fsync under the always policy)",
				nil, obs.IOBuckets),
			appendBytes: r.Counter("pisa_store_wal_append_bytes_total",
				"framed bytes appended to the WAL", nil),
			fsyncSeconds: r.Histogram("pisa_store_wal_fsync_seconds",
				"one fsync of the active WAL segment", nil, obs.IOBuckets),
			snapSeconds: r.Histogram("pisa_store_snapshot_seconds",
				"one atomic snapshot publication including WAL compaction", nil, nil),
			snapBytes: r.Gauge("pisa_store_snapshot_bytes",
				"payload size of the most recent snapshot", nil),
			appendErrs: errs("append"),
			fsyncErrs:  errs("fsync"),
			snapErrs:   errs("snapshot"),
		}
	})
	return storeM
}

// bridgeObs mirrors the store's live Stats into the process registry
// as gauge callbacks. Callback registration is replace-latest, so the
// most recently opened store owns the series (a daemon opens one).
func (s *Store) bridgeObs() {
	r := obs.Default()
	gauge := func(name, help string, read func(Stats) int64) {
		r.GaugeFunc(name, help, nil, func() float64 {
			return float64(read(s.Stats()))
		})
	}
	gauge("pisa_store_wal_last_index",
		"index of the most recently appended WAL record",
		func(st Stats) int64 { return int64(st.LastIndex) })
	gauge("pisa_store_snapshot_index",
		"last record index covered by the newest snapshot",
		func(st Stats) int64 { return int64(st.SnapshotIndex) })
	gauge("pisa_store_wal_records_since_snapshot",
		"appended records not yet covered by a snapshot",
		func(st Stats) int64 { return int64(st.RecordsSinceSnapshot) })
	gauge("pisa_store_wal_segments",
		"WAL segment files on disk, including the active one",
		func(st Stats) int64 { return int64(st.Segments) })
	gauge("pisa_store_wal_active_segment_bytes",
		"bytes in the active WAL segment",
		func(st Stats) int64 { return st.ActiveSegmentBytes })
}
