package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Snapshot file layout:
//
//	[8 bytes magic "PISASNP1"][8 bytes BE index][8 bytes BE payload length]
//	[4 bytes BE CRC32-C of payload][payload]
//
// A snapshot is written to a .tmp sibling, fsynced, then renamed into
// place and the directory fsynced, so a crash at any point leaves
// either the old complete snapshot set or the new one — never a
// half-written file under the final name. The index names the last WAL
// record the payload covers; every record at or below it is
// superseded.
const snapMagic = "PISASNP1"

const snapHeaderLen = 8 + 8 + 8 + 4

// maxSnapshotBytes bounds the payload length accepted from a header,
// guarding recovery against allocating from a corrupt length field.
const maxSnapshotBytes = int64(1) << 33

// snapshotName encodes the covered index.
func snapshotName(index uint64) string {
	return fmt.Sprintf("snap-%016x.snap", index)
}

// writeSnapshot atomically persists one snapshot and returns its final
// path.
func writeSnapshot(dir string, index uint64, payload []byte) (string, error) {
	final := filepath.Join(dir, snapshotName(index))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("store: snapshot temp: %w", err)
	}
	hdr := make([]byte, snapHeaderLen)
	copy(hdr, snapMagic)
	binary.BigEndian.PutUint64(hdr[8:16], index)
	binary.BigEndian.PutUint64(hdr[16:24], uint64(len(payload)))
	binary.BigEndian.PutUint32(hdr[24:28], crc32.Checksum(payload, crcTable))
	err = func() error {
		if _, err := f.Write(hdr); err != nil {
			return err
		}
		if _, err := f.Write(payload); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("store: publish snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return final, nil
}

// readSnapshot loads and verifies one snapshot file.
func readSnapshot(path string) (payload []byte, index uint64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("store: read snapshot: %w", err)
	}
	if len(data) < snapHeaderLen || string(data[:8]) != snapMagic {
		return nil, 0, fmt.Errorf("store: snapshot %s: bad header", path)
	}
	index = binary.BigEndian.Uint64(data[8:16])
	n := binary.BigEndian.Uint64(data[16:24])
	if int64(n) < 0 || int64(n) > maxSnapshotBytes {
		return nil, 0, fmt.Errorf("store: snapshot %s: impossible payload length %d", path, n)
	}
	if uint64(len(data)-snapHeaderLen) != n {
		return nil, 0, fmt.Errorf("store: snapshot %s: payload is %d bytes, header says %d",
			path, len(data)-snapHeaderLen, n)
	}
	payload = data[snapHeaderLen:]
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(data[24:28]) {
		return nil, 0, fmt.Errorf("store: snapshot %s: checksum mismatch", path)
	}
	return payload, index, nil
}

// listSnapshots returns snapshot files ordered newest (highest index)
// first.
func listSnapshots(entries []os.DirEntry) []segmentRef {
	var snaps []segmentRef
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if idx, ok := parseSeqName(e.Name(), "snap-", ".snap"); ok {
			snaps = append(snaps, segmentRef{name: e.Name(), first: idx})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].first > snaps[j].first })
	return snaps
}

// syncDir fsyncs a directory so renames and unlinks within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir for sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}
