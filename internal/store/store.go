// Package store is the durability subsystem for the PISA daemons: an
// append-only write-ahead log (WAL) of state-mutating events plus
// periodic atomic snapshots of the full serialised state.
//
// The paper's SDC is described as a database service, but the
// reproduction originally held the entire encrypted system state — the
// budget matrix N~, every PU's submitted signal column, the PU/SU
// registries — only in memory, so a crash silently discarded all
// spectrum state. This package makes that state survive restarts:
//
//   - every accepted mutation is appended to the WAL before the caller
//     acknowledges it (framing: length + CRC32-C per record, single
//     write(2) per append, so a kill -9 tears at most the final record);
//   - a snapshot of the whole state is persisted atomically (temp file
//     + rename + directory fsync) and supersedes the log prefix it
//     covers, after which older segments and snapshots are deleted
//     (compaction);
//   - recovery is snapshot-load + replay of the WAL tail, tolerating a
//     torn final record but refusing to guess past mid-log corruption.
//
// The package knows nothing about PISA message types: records are
// (type byte, payload) pairs and snapshots are opaque byte slices.
// internal/pisa supplies the encodings; cmd/sdcd and cmd/stpd wire the
// policies.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// FsyncPolicy selects when appended records are forced to disk.
type FsyncPolicy int

const (
	// FsyncInterval (the default) syncs the active segment from a
	// background ticker every Options.FsyncEvery. A crash loses at
	// most the last interval's worth of acknowledged records — the
	// usual production trade-off.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs after every append: nothing acknowledged is
	// ever lost, at the price of one fsync per mutation.
	FsyncAlways
	// FsyncNever leaves write-back entirely to the OS page cache.
	// Process crashes (kill -9) still lose nothing — the cache
	// survives the process — but power loss may. Fastest.
	FsyncNever
)

// ParseFsyncPolicy maps the config strings to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "", "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval or never)", s)
}

// String names the policy for logs.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// Options tunes one Store.
type Options struct {
	// Fsync selects the append durability policy.
	Fsync FsyncPolicy
	// FsyncEvery is the background sync period under FsyncInterval
	// (default 100ms).
	FsyncEvery time.Duration
	// SegmentBytes rotates the active segment once it grows past this
	// size (default 64 MiB).
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

// RecordType discriminates WAL record payloads. The values are owned
// by the caller (internal/pisa defines the PISA record set); the store
// only round-trips them.
type RecordType uint8

// Record is one WAL entry. Index is the global, gapless,
// monotonically increasing position assigned at append time.
type Record struct {
	Index   uint64
	Type    RecordType
	Payload []byte
}

// Recovery describes what Open reconstructed, for boot-time logging.
type Recovery struct {
	// Source is "empty", "snapshot", "wal" or "snapshot+wal".
	Source string
	// SnapshotIndex is the last record index the loaded snapshot
	// covers (0 when none).
	SnapshotIndex uint64
	// TailRecords counts WAL records newer than the snapshot that the
	// caller must replay.
	TailRecords int
	// TornBytes is the size of the torn final append that was
	// truncated away (0 for a clean shutdown).
	TornBytes int64
}

// Stats is a point-in-time view of the store, for operational logging
// and snapshot scheduling.
type Stats struct {
	LastIndex            uint64
	SnapshotIndex        uint64
	RecordsSinceSnapshot uint64
	Segments             int
	ActiveSegmentBytes   int64
}

// Store is one open WAL + snapshot directory. Append and SaveSnapshot
// are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu          sync.Mutex
	f           *os.File // active segment
	activeFirst uint64
	activeBytes int64
	segments    int // segment files on disk, including the active one
	lastIndex   uint64
	snapIndex   uint64
	snapshot    []byte
	tail        []Record
	recovery    Recovery
	dirty       bool // unsynced appends outstanding
	syncErr     error
	closing     bool // Close in progress: stopSync already closed
	closed      bool

	stopSync chan struct{}
	syncDone chan struct{}
}

// ShardDir names the state subdirectory for one channel shard of a
// sharded SDC, so N shards hosted from one -store root keep disjoint
// WALs and snapshots. Open creates it on first use.
func ShardDir(dir string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d", index))
}

// Open recovers (or initialises) the store rooted at dir: loads the
// newest snapshot, replays every intact WAL record past it into the
// tail, truncates a torn final append, and positions the log for new
// appends. Mid-log corruption — a record that fails its checksum with
// valid data behind it, or an impossible length field — is an error;
// the store never silently drops acknowledged interior records.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts}

	// Leftover temp files are failed snapshot publications; the rename
	// never happened, so they supersede nothing.
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}

	// Newest snapshot wins. A corrupt newest snapshot is fatal rather
	// than a silent fallback: compaction deleted the WAL prefix it
	// covered, so older state cannot reproduce it.
	snaps := listSnapshots(entries)
	if len(snaps) > 0 {
		payload, idx, err := readSnapshot(filepath.Join(dir, snaps[0].name))
		if err != nil {
			return nil, err
		}
		if idx != snaps[0].first {
			return nil, fmt.Errorf("store: snapshot %s header index %d disagrees with its name", snaps[0].name, idx)
		}
		s.snapshot = payload
		s.snapIndex = idx
		s.lastIndex = idx
		// Older snapshots are superseded; a crash may have left them.
		for _, old := range snaps[1:] {
			os.Remove(filepath.Join(dir, old.name))
		}
	}

	segs := listSegments(entries)
	if len(segs) > 0 && segs[0].first > s.snapIndex+1 {
		return nil, fmt.Errorf("store: WAL gap: first segment starts at record %d but snapshot covers only %d",
			segs[0].first, s.snapIndex)
	}
	var (
		activeScan segScan
		activeRef  segmentRef
	)
	next := uint64(0) // expected first index of the next segment; 0 = unchecked
	for i, seg := range segs {
		if next != 0 && seg.first != next {
			return nil, fmt.Errorf("store: WAL gap: segment %s starts at record %d, want %d",
				seg.name, seg.first, next)
		}
		scan, err := scanSegment(filepath.Join(dir, seg.name), seg.first)
		if err != nil {
			return nil, err
		}
		if scan.torn && i != len(segs)-1 {
			return nil, fmt.Errorf("store: segment %s is torn mid-log: %v", seg.name, scan.tornErr)
		}
		for _, rec := range scan.records {
			if rec.Index > s.lastIndex {
				s.lastIndex = rec.Index
			}
			if rec.Index > s.snapIndex {
				s.tail = append(s.tail, rec)
			}
		}
		next = seg.first + uint64(len(scan.records))
		if i == len(segs)-1 {
			activeScan = scan
			activeRef = seg
		}
	}
	s.segments = len(segs)

	// Open (or create) the active segment for appending, truncating a
	// torn tail first so the next append starts on a frame boundary.
	if len(segs) == 0 {
		if err := s.createSegmentLocked(s.lastIndex + 1); err != nil {
			return nil, err
		}
	} else {
		f, err := os.OpenFile(filepath.Join(dir, activeRef.name), os.O_RDWR, 0)
		if err != nil {
			return nil, fmt.Errorf("store: open active segment: %w", err)
		}
		if activeScan.torn {
			size, serr := f.Seek(0, 2)
			if serr == nil {
				s.recovery.TornBytes = size - activeScan.goodBytes
			}
			if err := f.Truncate(activeScan.goodBytes); err != nil {
				f.Close()
				return nil, fmt.Errorf("store: truncate torn tail: %w", err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, fmt.Errorf("store: sync truncated segment: %w", err)
			}
		}
		if _, err := f.Seek(activeScan.goodBytes, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: seek active segment: %w", err)
		}
		s.f = f
		s.activeFirst = activeRef.first
		s.activeBytes = activeScan.goodBytes
	}

	s.recovery.SnapshotIndex = s.snapIndex
	s.recovery.TailRecords = len(s.tail)
	switch {
	case s.snapshot != nil && len(s.tail) > 0:
		s.recovery.Source = "snapshot+wal"
	case s.snapshot != nil:
		s.recovery.Source = "snapshot"
	case len(s.tail) > 0:
		s.recovery.Source = "wal"
	default:
		s.recovery.Source = "empty"
	}

	if s.opts.Fsync == FsyncInterval {
		s.stopSync = make(chan struct{})
		s.syncDone = make(chan struct{})
		go s.syncLoop()
	}
	s.bridgeObs()
	return s, nil
}

// createSegmentLocked starts a fresh segment whose first record will
// have the given index. Caller holds s.mu (or is still constructing).
func (s *Store) createSegmentLocked(first uint64) error {
	f, err := os.OpenFile(filepath.Join(s.dir, segmentName(first)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: create segment: %w", err)
	}
	s.f = f
	s.activeFirst = first
	s.activeBytes = 0
	s.segments++
	return nil
}

// Recovery reports what Open reconstructed.
func (s *Store) Recovery() Recovery {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// SnapshotData returns the payload of the snapshot loaded at Open (nil
// when the directory held none). The caller restores state from it,
// then replays Tail.
func (s *Store) SnapshotData() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshot
}

// Tail returns the WAL records newer than the loaded snapshot, in
// append order. Records appended after Open are not included — the
// tail is recovery state, not a live view.
func (s *Store) Tail() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tail
}

// Append writes one record, returning its assigned index. Under
// FsyncAlways the record is durable when Append returns; under the
// other policies durability lags by at most the sync interval (or the
// life of the page cache).
func (s *Store) Append(t RecordType, payload []byte) (idx uint64, err error) {
	m := smetrics()
	defer m.appendSeconds.ObserveSince(time.Now())
	defer func() {
		if err != nil {
			m.appendErrs.Inc()
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("store: append on closed store")
	}
	if s.syncErr != nil {
		return 0, fmt.Errorf("store: background sync failed: %w", s.syncErr)
	}
	if len(payload) >= maxRecordBytes {
		return 0, fmt.Errorf("store: record payload %d bytes exceeds limit", len(payload))
	}
	if s.f == nil {
		return 0, fmt.Errorf("store: no active segment (previous compaction failed)")
	}
	if s.activeBytes >= s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return 0, err
		}
	}
	frame := appendFrame(nil, t, payload)
	if _, err := s.f.Write(frame); err != nil {
		return 0, fmt.Errorf("store: append: %w", err)
	}
	s.lastIndex++
	s.activeBytes += int64(len(frame))
	m.appendBytes.Add(uint64(len(frame)))
	if s.opts.Fsync == FsyncAlways {
		t0 := time.Now()
		if err := s.f.Sync(); err != nil {
			m.fsyncErrs.Inc()
			return 0, fmt.Errorf("store: fsync: %w", err)
		}
		m.fsyncSeconds.ObserveSince(t0)
	} else {
		s.dirty = true
	}
	return s.lastIndex, nil
}

// rotateLocked closes the active segment and starts the next one.
func (s *Store) rotateLocked() error {
	if s.opts.Fsync != FsyncNever {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: sync before rotate: %w", err)
		}
		s.dirty = false
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("store: close segment: %w", err)
	}
	return s.createSegmentLocked(s.lastIndex + 1)
}

// SaveSnapshot atomically persists state as covering every record
// appended so far, then compacts: all WAL segments and older snapshots
// are superseded and deleted, and a fresh segment is started. The
// caller must pass state that reflects at least every acknowledged
// append (ExportState called after the last Append does).
func (s *Store) SaveSnapshot(state []byte) (err error) {
	m := smetrics()
	defer m.snapSeconds.ObserveSince(time.Now())
	defer func() {
		if err != nil {
			m.snapErrs.Inc()
		} else {
			m.snapBytes.Set(int64(len(state)))
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: snapshot on closed store")
	}
	index := s.lastIndex
	// Make the WAL prefix durable first: if the snapshot write crashes
	// midway, recovery still has snapshot[old] + complete log.
	if s.opts.Fsync != FsyncNever && s.f != nil {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: sync before snapshot: %w", err)
		}
		s.dirty = false
	}
	if _, err := writeSnapshot(s.dir, index, state); err != nil {
		return err
	}
	// The snapshot is durable; everything it covers is garbage now.
	// Crash anywhere below and recovery skips the stale records.
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, snap := range listSnapshots(entries) {
		if snap.first != index {
			os.Remove(filepath.Join(s.dir, snap.name))
		}
	}
	// s.f may already be nil if a previous SaveSnapshot failed at
	// createSegmentLocked (e.g. transient disk-full); this call then
	// retries the segment creation instead of wedging on a nil close.
	if s.f != nil {
		err := s.f.Close()
		s.f = nil
		if err != nil {
			return fmt.Errorf("store: close segment: %w", err)
		}
	}
	for _, seg := range listSegments(entries) {
		os.Remove(filepath.Join(s.dir, seg.name))
	}
	s.segments = 0
	if err := s.createSegmentLocked(index + 1); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.snapIndex = index
	s.snapshot = nil // recovery payload only; do not pin post-boot
	s.tail = nil
	return nil
}

// Sync forces outstanding appends to disk regardless of policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.closed || s.f == nil || !s.dirty {
		return s.syncErr
	}
	m := smetrics()
	t0 := time.Now()
	if err := s.f.Sync(); err != nil {
		m.fsyncErrs.Inc()
		s.syncErr = err
		return err
	}
	m.fsyncSeconds.ObserveSince(t0)
	s.dirty = false
	return nil
}

// syncLoop is the FsyncInterval background ticker.
func (s *Store) syncLoop() {
	defer close(s.syncDone)
	t := time.NewTicker(s.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.Sync()
		case <-s.stopSync:
			return
		}
	}
}

// Stats returns the current counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		LastIndex:            s.lastIndex,
		SnapshotIndex:        s.snapIndex,
		RecordsSinceSnapshot: s.lastIndex - s.snapIndex,
		Segments:             s.segments,
		ActiveSegmentBytes:   s.activeBytes,
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close flushes and releases the store. Records already appended
// remain on disk for the next Open. Safe for concurrent and repeated
// calls: only the first proceeds, the rest return nil immediately.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed || s.closing {
		s.mu.Unlock()
		return nil
	}
	s.closing = true
	s.mu.Unlock()
	if s.stopSync != nil {
		close(s.stopSync)
		<-s.syncDone
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.f != nil {
		if s.opts.Fsync != FsyncNever && s.dirty {
			err = s.f.Sync()
		}
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
		s.f = nil
	}
	s.closed = true
	return err
}
