package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func appendN(t *testing.T, s *Store, typ RecordType, n int, tag string) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := s.Append(typ, []byte(fmt.Sprintf("%s-%d", tag, i))); err != nil {
			t.Fatal(err)
		}
	}
}

// lastSegmentPath finds the newest WAL segment file.
func lastSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := listSegments(entries)
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	return filepath.Join(dir, segs[len(segs)-1].name)
}

func countFiles(t *testing.T, dir, prefix string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), prefix) {
			n++
		}
	}
	return n
}

func TestStoreEmptyDir(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{Fsync: FsyncNever})
	defer s.Close()
	rec := s.Recovery()
	if rec.Source != "empty" || rec.TailRecords != 0 || rec.TornBytes != 0 {
		t.Fatalf("recovery = %+v, want empty", rec)
	}
	if s.SnapshotData() != nil {
		t.Fatal("snapshot data from empty dir")
	}
}

func TestStoreAppendReplay(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: FsyncAlways})
	appendN(t, s, 7, 5, "rec")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{Fsync: FsyncAlways})
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Source != "wal" {
		t.Fatalf("source = %q, want wal", rec.Source)
	}
	tail := s2.Tail()
	if len(tail) != 5 {
		t.Fatalf("tail has %d records, want 5", len(tail))
	}
	for i, r := range tail {
		want := fmt.Sprintf("rec-%d", i)
		if r.Type != 7 || string(r.Payload) != want || r.Index != uint64(i+1) {
			t.Fatalf("record %d = {%d %d %q}, want {%d 7 %q}", i, r.Index, r.Type, r.Payload, i+1, want)
		}
	}
	// Appends continue the index sequence.
	idx, err := s2.Append(7, []byte("more"))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 6 {
		t.Fatalf("next index = %d, want 6", idx)
	}
}

func TestStoreSnapshotSupersedesAndCompacts(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: FsyncAlways, SegmentBytes: 64})
	appendN(t, s, 1, 10, "old") // tiny SegmentBytes forces several segments
	if countFiles(t, dir, "wal-") < 2 {
		t.Fatal("rotation did not produce multiple segments")
	}
	if err := s.SaveSnapshot([]byte("STATE-A")); err != nil {
		t.Fatal(err)
	}
	if got := countFiles(t, dir, "wal-"); got != 1 {
		t.Fatalf("%d segments after compaction, want 1 fresh one", got)
	}
	if got := countFiles(t, dir, "snap-"); got != 1 {
		t.Fatalf("%d snapshots, want 1", got)
	}
	appendN(t, s, 2, 3, "new")
	st := s.Stats()
	if st.RecordsSinceSnapshot != 3 || st.SnapshotIndex != 10 || st.LastIndex != 13 {
		t.Fatalf("stats = %+v", st)
	}
	// A second snapshot deletes the first.
	if err := s.SaveSnapshot([]byte("STATE-B")); err != nil {
		t.Fatal(err)
	}
	if got := countFiles(t, dir, "snap-"); got != 1 {
		t.Fatalf("%d snapshots after second save, want 1", got)
	}
	appendN(t, s, 2, 2, "tail")
	s.Close()

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Source != "snapshot+wal" || rec.SnapshotIndex != 13 || rec.TailRecords != 2 {
		t.Fatalf("recovery = %+v", rec)
	}
	if !bytes.Equal(s2.SnapshotData(), []byte("STATE-B")) {
		t.Fatalf("snapshot payload = %q", s2.SnapshotData())
	}
	tail := s2.Tail()
	if len(tail) != 2 || string(tail[0].Payload) != "tail-0" || tail[0].Index != 14 {
		t.Fatalf("tail = %+v", tail)
	}
}

func TestStoreSnapshotOnly(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: FsyncNever})
	appendN(t, s, 1, 4, "x")
	if err := s.SaveSnapshot([]byte("S")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if rec := s2.Recovery(); rec.Source != "snapshot" || rec.TailRecords != 0 {
		t.Fatalf("recovery = %+v, want snapshot only", rec)
	}
}

// TestStoreTornTail simulates kill -9 mid-append: the final record is
// cut at several byte positions; every fully written record must
// survive and the torn bytes must be dropped cleanly.
func TestStoreTornTail(t *testing.T) {
	frame := len(appendFrame(nil, 3, []byte("payload-0")))
	for _, cut := range []int{1, frameHeaderLen - 1, frameHeaderLen, frameHeaderLen + 3, frame - 1} {
		t.Run(fmt.Sprintf("cut-%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, Options{Fsync: FsyncAlways})
			appendN(t, s, 3, 4, "payload")
			s.Close()

			seg := lastSegmentPath(t, dir)
			info, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			// Keep 3 full records plus `cut` bytes of the fourth.
			keep := info.Size() - int64(frame) + int64(cut)
			if err := os.Truncate(seg, keep); err != nil {
				t.Fatal(err)
			}

			s2 := mustOpen(t, dir, Options{})
			defer s2.Close()
			rec := s2.Recovery()
			if rec.TornBytes != int64(cut) {
				t.Fatalf("torn bytes = %d, want %d", rec.TornBytes, cut)
			}
			tail := s2.Tail()
			if len(tail) != 3 {
				t.Fatalf("%d records survived, want 3", len(tail))
			}
			for i, r := range tail {
				if string(r.Payload) != fmt.Sprintf("payload-%d", i) {
					t.Fatalf("record %d corrupted: %q", i, r.Payload)
				}
			}
			// The log must keep working: append and re-open once more.
			if idx, err := s2.Append(3, []byte("after-crash")); err != nil || idx != 4 {
				t.Fatalf("append after torn recovery: idx=%d err=%v", idx, err)
			}
			s2.Close()
			s3 := mustOpen(t, dir, Options{})
			defer s3.Close()
			if got := len(s3.Tail()); got != 4 {
				t.Fatalf("after reopen, tail = %d records, want 4", got)
			}
		})
	}
}

// TestStoreTornChecksumTail flips a byte inside the final record's
// payload: a complete-but-corrupt final frame also counts as torn.
func TestStoreTornChecksumTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: FsyncAlways})
	appendN(t, s, 3, 3, "v")
	s.Close()
	seg := lastSegmentPath(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if got := len(s2.Tail()); got != 2 {
		t.Fatalf("%d records survived, want 2", got)
	}
	if s2.Recovery().TornBytes == 0 {
		t.Fatal("corrupt final record not reported as torn")
	}
}

// TestStoreRejectsMidLogCorruption flips a byte in the FIRST record
// while later records are intact: that is disk corruption, not a torn
// append, and recovery must refuse rather than drop acknowledged data.
func TestStoreRejectsMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: FsyncAlways})
	appendN(t, s, 3, 3, "v")
	s.Close()
	seg := lastSegmentPath(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeaderLen+1] ^= 0xff // inside record 1's payload
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("mid-log corruption accepted")
	}
}

// TestStoreRejectsCorruptSnapshot: the newest snapshot failing its
// checksum is fatal — its WAL prefix was compacted away, so falling
// back silently would lose state.
func TestStoreRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: FsyncNever})
	appendN(t, s, 1, 2, "x")
	if err := s.SaveSnapshot([]byte("precious")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps := listSnapshots(entries)
	path := filepath.Join(dir, snaps[0].name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

// TestStoreLeftoverTmpIgnored: a crash during snapshot publication
// leaves a .tmp file; recovery must ignore and remove it.
func TestStoreLeftoverTmpIgnored(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: FsyncNever})
	appendN(t, s, 1, 2, "x")
	s.Close()
	tmp := filepath.Join(dir, snapshotName(99)+".tmp")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if rec := s2.Recovery(); rec.Source != "wal" || rec.TailRecords != 2 {
		t.Fatalf("recovery = %+v", rec)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("leftover .tmp not cleaned")
	}
}

func TestStoreRotationAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: FsyncNever, SegmentBytes: 48})
	appendN(t, s, 9, 20, "r")
	if s.Stats().Segments < 3 {
		t.Fatalf("segments = %d, want several", s.Stats().Segments)
	}
	s.Close()
	s2 := mustOpen(t, dir, Options{SegmentBytes: 48})
	defer s2.Close()
	tail := s2.Tail()
	if len(tail) != 20 {
		t.Fatalf("replayed %d records across segments, want 20", len(tail))
	}
	for i, r := range tail {
		if r.Index != uint64(i+1) || string(r.Payload) != fmt.Sprintf("r-%d", i) {
			t.Fatalf("record %d = {%d %q}", i, r.Index, r.Payload)
		}
	}
}

func TestStoreFsyncPolicies(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, Options{Fsync: p, FsyncEvery: time.Millisecond})
			appendN(t, s, 1, 10, "p")
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2 := mustOpen(t, dir, Options{})
			defer s2.Close()
			if got := len(s2.Tail()); got != 10 {
				t.Fatalf("%d records, want 10", got)
			}
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	cases := map[string]FsyncPolicy{
		"": FsyncInterval, "interval": FsyncInterval,
		"always": FsyncAlways, "ALWAYS": FsyncAlways, "never": FsyncNever,
	}
	for in, want := range cases {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

// TestStoreConcurrentAppend exercises the append path under -race and
// checks the indices come back gapless.
func TestStoreConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: FsyncInterval, FsyncEvery: time.Millisecond, SegmentBytes: 256})
	const goroutines, each = 8, 25
	var wg sync.WaitGroup
	seen := make([]map[uint64]bool, goroutines)
	for g := 0; g < goroutines; g++ {
		seen[g] = make(map[uint64]bool)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				idx, err := s.Append(RecordType(g), []byte("concurrent"))
				if err != nil {
					t.Error(err)
					return
				}
				seen[g][idx] = true
			}
		}(g)
	}
	wg.Wait()
	all := make(map[uint64]bool)
	for _, m := range seen {
		for idx := range m {
			if all[idx] {
				t.Fatalf("index %d assigned twice", idx)
			}
			all[idx] = true
		}
	}
	if len(all) != goroutines*each {
		t.Fatalf("%d distinct indices, want %d", len(all), goroutines*each)
	}
	s.Close()
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if got := len(s2.Tail()); got != goroutines*each {
		t.Fatalf("replayed %d, want %d", got, goroutines*each)
	}
}

// TestStoreSnapshotRetryAfterFailedCompaction: a SaveSnapshot that
// fails at fresh-segment creation (e.g. transient disk-full) leaves the
// store with no active segment. A later SaveSnapshot must recreate one
// instead of wedging on a nil segment close forever.
func TestStoreSnapshotRetryAfterFailedCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: FsyncNever})
	appendN(t, s, 1, 3, "x")
	// Put the store in the post-failure state: segment closed and
	// detached, exactly as a SaveSnapshot aborted mid-compaction does.
	s.mu.Lock()
	s.f.Close()
	s.f = nil
	s.mu.Unlock()
	if _, err := s.Append(1, []byte("y")); err == nil {
		t.Fatal("append with no active segment succeeded")
	}
	if err := s.SaveSnapshot([]byte("S")); err != nil {
		t.Fatalf("snapshot retry with no active segment: %v", err)
	}
	if idx, err := s.Append(1, []byte("after")); err != nil || idx != 4 {
		t.Fatalf("append after retry: idx=%d err=%v", idx, err)
	}
	s.Close()
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Source != "snapshot+wal" || rec.SnapshotIndex != 3 || rec.TailRecords != 1 {
		t.Fatalf("recovery = %+v, want snapshot at 3 plus 1 tail record", rec)
	}
}

// TestStoreCloseConcurrent: racing Close calls must not double-close
// the sync-loop channel (run under -race in CI).
func TestStoreCloseConcurrent(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncInterval, FsyncNever} {
		t.Run(p.String(), func(t *testing.T) {
			s := mustOpen(t, t.TempDir(), Options{Fsync: p, FsyncEvery: time.Millisecond})
			appendN(t, s, 1, 3, "x")
			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := s.Close(); err != nil {
						t.Error(err)
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TestStoreCrashBetweenSnapshotAndCompaction simulates a crash after
// the snapshot rename but before the old segments are deleted: stale
// segments whose records the snapshot covers must be skipped.
func TestStoreCrashBetweenSnapshotAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: FsyncNever})
	appendN(t, s, 1, 5, "pre")
	s.Close()
	// Write the snapshot by hand (as SaveSnapshot would) without
	// compacting, mimicking the crash window.
	if _, err := writeSnapshot(dir, 5, []byte("covers-5")); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Source != "snapshot" || rec.SnapshotIndex != 5 || rec.TailRecords != 0 {
		t.Fatalf("recovery = %+v, want snapshot covering the stale segment", rec)
	}
	if idx, err := s2.Append(1, []byte("next")); err != nil || idx != 6 {
		t.Fatalf("append after partial compaction: idx=%d err=%v", idx, err)
	}
}
