package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Record framing inside a WAL segment:
//
//	[4 bytes LE length][4 bytes LE CRC32-C][1 byte type][payload]
//
// The length counts the body (type byte plus payload); the checksum
// covers the body. Each frame is written with a single write(2), so a
// crash mid-append leaves a *prefix* of the frame on disk: either a
// partial header, or an intact header whose body is short. Both shapes
// are recognised as a torn tail and truncated away on recovery. A
// frame whose body is fully present but fails its checksum is torn
// only if it sits at the very end of the final segment (partial sector
// writes); anywhere else it is corruption and recovery refuses to
// guess.
const (
	frameHeaderLen = 8
	// maxRecordBytes bounds a single record body. A length field above
	// this (or zero) cannot come from a torn append of a record we
	// wrote, so it is reported as corruption rather than silently
	// truncated.
	maxRecordBytes = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame serialises one record into buf and returns the extended
// slice.
func appendFrame(buf []byte, t RecordType, payload []byte) []byte {
	body := make([]byte, 1+len(payload))
	body[0] = byte(t)
	copy(body[1:], payload)
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(body, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, body...)
}

// segmentName encodes the index of the first record a segment holds.
func segmentName(first uint64) string {
	return fmt.Sprintf("wal-%016x.log", first)
}

// parseSeqName extracts the hex sequence number from names like
// wal-%016x.log or snap-%016x.snap.
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// segScan is the result of reading one segment file.
type segScan struct {
	records   []Record // indices assigned from the segment's first index
	goodBytes int64    // file offset just past the last valid record
	torn      bool     // a partial/overwritten frame follows goodBytes
	tornErr   error    // why the tail was considered torn
}

// scanSegment reads every intact record of one segment. first is the
// index of the segment's first record (from its file name). A
// recognisably torn tail is reported via the torn flag; anything that
// cannot be a torn single-write append (bogus length field, checksum
// failure with further data behind it) returns an error.
func scanSegment(path string, first uint64) (segScan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return segScan{}, fmt.Errorf("store: read segment: %w", err)
	}
	var out segScan
	off := 0
	idx := first
	for {
		rem := len(data) - off
		if rem == 0 {
			out.goodBytes = int64(off)
			return out, nil
		}
		if rem < frameHeaderLen {
			out.goodBytes = int64(off)
			out.torn = true
			out.tornErr = fmt.Errorf("store: %d-byte partial frame header at offset %d", rem, off)
			return out, nil
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n == 0 || n > maxRecordBytes {
			return out, fmt.Errorf("store: segment %s: record %d has impossible length %d (corrupt header)",
				path, idx, n)
		}
		if rem < frameHeaderLen+n {
			out.goodBytes = int64(off)
			out.torn = true
			out.tornErr = fmt.Errorf("store: torn record %d at offset %d (%d of %d body bytes)",
				idx, off, rem-frameHeaderLen, n)
			return out, nil
		}
		body := data[off+frameHeaderLen : off+frameHeaderLen+n]
		if crc32.Checksum(body, crcTable) != sum {
			if rem == frameHeaderLen+n {
				// Checksum failure on the very last frame: a partially
				// persisted final append. Treat as torn.
				out.goodBytes = int64(off)
				out.torn = true
				out.tornErr = fmt.Errorf("store: checksum mismatch on final record %d", idx)
				return out, nil
			}
			return out, fmt.Errorf("store: segment %s: record %d fails its checksum with %d bytes of log behind it (corrupt, not torn)",
				path, idx, rem-frameHeaderLen-n)
		}
		payload := make([]byte, n-1)
		copy(payload, body[1:])
		out.records = append(out.records, Record{Index: idx, Type: RecordType(body[0]), Payload: payload})
		off += frameHeaderLen + n
		idx++
	}
}

// listSegments returns the WAL segments in dir ordered by first index.
func listSegments(entries []os.DirEntry) []segmentRef {
	var segs []segmentRef
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSeqName(e.Name(), "wal-", ".log"); ok {
			segs = append(segs, segmentRef{name: e.Name(), first: first})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs
}

// segmentRef names one on-disk segment.
type segmentRef struct {
	name  string
	first uint64
}
