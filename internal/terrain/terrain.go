// Package terrain provides the public terrain-database substrate the
// paper leans on (§III-D: "terrain information is public knowledge
// that is easily found on government terrain database" — USGS/SRTM3,
// refs [3, 33]). Since those databases are unavailable offline, the
// package generates deterministic synthetic elevation fields with the
// diamond-square algorithm and derives terrain-aware path loss via
// single knife-edge diffraction — the physical effect the
// Longley-Rice irregular terrain model (ref [29]) captures and that
// the paper's S^PU values come from.
//
// Everything is seeded: the same seed always yields the same terrain,
// so experiments are reproducible and all parties can derive the same
// "public knowledge" independently.
package terrain

import (
	"fmt"
	"math"

	"pisa/internal/geo"
	"pisa/internal/propagation"
)

// Map is a square elevation grid over a service area.
type Map struct {
	size    int // grid vertices per side (2^n + 1)
	spacing float64
	heights []float64 // row-major, metres above datum
}

// Config parameterises terrain generation.
type Config struct {
	// Seed makes the terrain reproducible.
	Seed uint64
	// Size is the number of vertices per side; rounded up to the
	// next 2^n + 1 (diamond-square requirement).
	Size int
	// SpacingMeters is the horizontal distance between vertices
	// (SRTM3 is ~90 m).
	SpacingMeters float64
	// ReliefMeters is the initial corner displacement amplitude —
	// larger means more mountainous terrain.
	ReliefMeters float64
	// Roughness in (0, 1) controls how fast displacement decays per
	// octave: ~0.5 gives natural-looking terrain.
	Roughness float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Size < 2:
		return fmt.Errorf("terrain: Size must be at least 2, got %d", c.Size)
	case c.SpacingMeters <= 0:
		return fmt.Errorf("terrain: SpacingMeters must be positive, got %g", c.SpacingMeters)
	case c.ReliefMeters < 0:
		return fmt.Errorf("terrain: ReliefMeters must be non-negative, got %g", c.ReliefMeters)
	case c.Roughness <= 0 || c.Roughness >= 1:
		return fmt.Errorf("terrain: Roughness %g outside (0, 1)", c.Roughness)
	}
	return nil
}

// Generate builds a terrain map with the diamond-square algorithm.
func Generate(cfg Config) (*Map, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Round size up to 2^n + 1.
	size := 3
	for size < cfg.Size {
		size = (size-1)*2 + 1
	}
	m := &Map{
		size:    size,
		spacing: cfg.SpacingMeters,
		heights: make([]float64, size*size),
	}
	rnd := func(a, b int, scale float64) float64 {
		// Deterministic signed displacement per vertex.
		u := unitHash(cfg.Seed, uint64(a)<<32|uint64(uint32(b)), uint64(size))
		return (u*2 - 1) * scale
	}
	at := func(x, y int) float64 { return m.heights[y*m.size+x] }
	set := func(x, y int, v float64) { m.heights[y*m.size+x] = v }

	// Seed the corners.
	for _, corner := range [][2]int{{0, 0}, {size - 1, 0}, {0, size - 1}, {size - 1, size - 1}} {
		set(corner[0], corner[1], rnd(corner[0], corner[1], cfg.ReliefMeters))
	}
	scale := cfg.ReliefMeters
	for step := size - 1; step > 1; step /= 2 {
		half := step / 2
		// Diamond step.
		for y := half; y < size; y += step {
			for x := half; x < size; x += step {
				avg := (at(x-half, y-half) + at(x+half, y-half) +
					at(x-half, y+half) + at(x+half, y+half)) / 4
				set(x, y, avg+rnd(x, y, scale))
			}
		}
		// Square step.
		for y := 0; y < size; y += half {
			start := half
			if (y/half)%2 == 1 {
				start = 0
			}
			for x := start; x < size; x += step {
				sum, n := 0.0, 0
				if x-half >= 0 {
					sum += at(x-half, y)
					n++
				}
				if x+half < size {
					sum += at(x+half, y)
					n++
				}
				if y-half >= 0 {
					sum += at(x, y-half)
					n++
				}
				if y+half < size {
					sum += at(x, y+half)
					n++
				}
				set(x, y, sum/float64(n)+rnd(x, y, scale))
			}
		}
		scale *= cfg.Roughness
	}
	return m, nil
}

// Extent returns the map's side length in metres.
func (m *Map) Extent() float64 { return float64(m.size-1) * m.spacing }

// ElevationAt returns the bilinearly interpolated elevation at a
// point; coordinates outside the map clamp to the edge.
func (m *Map) ElevationAt(p geo.Point) float64 {
	fx := clamp(p.X/m.spacing, 0, float64(m.size-1))
	fy := clamp(p.Y/m.spacing, 0, float64(m.size-1))
	x0, y0 := int(fx), int(fy)
	x1, y1 := min(x0+1, m.size-1), min(y0+1, m.size-1)
	tx, ty := fx-float64(x0), fy-float64(y0)
	h00 := m.heights[y0*m.size+x0]
	h10 := m.heights[y0*m.size+x1]
	h01 := m.heights[y1*m.size+x0]
	h11 := m.heights[y1*m.size+x1]
	return h00*(1-tx)*(1-ty) + h10*tx*(1-ty) + h01*(1-tx)*ty + h11*tx*ty
}

// Profile samples the terrain along the straight path from a to b.
func (m *Map) Profile(a, b geo.Point, samples int) []float64 {
	if samples < 2 {
		samples = 2
	}
	out := make([]float64, samples)
	for i := range out {
		t := float64(i) / float64(samples-1)
		out[i] = m.ElevationAt(geo.Point{
			X: a.X + t*(b.X-a.X),
			Y: a.Y + t*(b.Y-a.Y),
		})
	}
	return out
}

// KnifeEdgeLossDB computes the single knife-edge diffraction loss for
// the worst obstruction between two antennas (heights in metres above
// local ground), at the given frequency. Zero when the path is clear.
// This is the dominant terrain effect Longley-Rice models; the
// approximation is the ITU-R P.526 formulation of the Fresnel
// parameter v:
//
//	loss = 6.9 + 20*log10(sqrt((v-0.1)^2 + 1) + v - 0.1)  for v > -0.78
func (m *Map) KnifeEdgeLossDB(a, b geo.Point, antennaA, antennaB, freqMHz float64) float64 {
	const samples = 64
	profile := m.Profile(a, b, samples)
	d := a.Distance(b)
	if d <= 0 || freqMHz <= 0 {
		return 0
	}
	lambda := 299.792458 / freqMHz // metres
	hA := profile[0] + antennaA
	hB := profile[samples-1] + antennaB
	worstV := math.Inf(-1)
	for i := 1; i < samples-1; i++ {
		t := float64(i) / float64(samples-1)
		d1 := d * t
		d2 := d * (1 - t)
		los := hA + (hB-hA)*t // line of sight height at the sample
		h := profile[i] - los // obstruction above the LOS line
		v := h * math.Sqrt(2*d/(lambda*d1*d2))
		if v > worstV {
			worstV = v
		}
	}
	if worstV <= -0.78 {
		return 0
	}
	x := worstV - 0.1
	return 6.9 + 20*math.Log10(math.Sqrt(x*x+1)+x)
}

// Model wraps a base distance model with terrain diffraction for a
// fixed link geometry, satisfying propagation.Model. Build one per
// link via LinkModel.
type Model struct {
	base       propagation.Model
	m          *Map
	a, b       geo.Point
	hA, hB     float64
	freqMHz    float64
	terrainDB  float64
	terrainSet bool
}

// LinkModel returns a propagation model for the specific path a->b:
// base loss plus the (precomputed) knife-edge diffraction loss for
// that path. The diffraction term is geometry-dependent, not
// distance-dependent, so it is computed once.
func (m *Map) LinkModel(base propagation.Model, a, b geo.Point, antennaA, antennaB, freqMHz float64) *Model {
	return &Model{
		base:    base,
		m:       m,
		a:       a,
		b:       b,
		hA:      antennaA,
		hB:      antennaB,
		freqMHz: freqMHz,
	}
}

// Name implements propagation.Model.
func (l *Model) Name() string { return l.base.Name() + "+terrain" }

// LossDB implements propagation.Model.
func (l *Model) LossDB(dMeters float64) float64 {
	if !l.terrainSet {
		l.terrainDB = l.m.KnifeEdgeLossDB(l.a, l.b, l.hA, l.hB, l.freqMHz)
		l.terrainSet = true
	}
	return l.base.LossDB(dMeters) + l.terrainDB
}

func clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}

// unitHash maps (seed, a, b) to a deterministic uniform [0, 1).
func unitHash(seed, a, b uint64) float64 {
	x := splitmix64(seed ^ splitmix64(a) ^ splitmix64(b*0x9e3779b97f4a7c15))
	return float64(x>>11) / (1 << 53)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
