package terrain

import (
	"math"
	"testing"

	"pisa/internal/geo"
	"pisa/internal/propagation"
)

func testConfig() Config {
	return Config{
		Seed:          7,
		Size:          65,
		SpacingMeters: 90, // SRTM3-like
		ReliefMeters:  200,
		Roughness:     0.55,
	}
}

func mustGenerate(t *testing.T, cfg Config) *Map {
	t.Helper()
	m, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Size = 1 },
		func(c *Config) { c.SpacingMeters = 0 },
		func(c *Config) { c.ReliefMeters = -1 },
		func(c *Config) { c.Roughness = 0 },
		func(c *Config) { c.Roughness = 1 },
	}
	for i, mut := range mutations {
		cfg := testConfig()
		mut(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, testConfig())
	b := mustGenerate(t, testConfig())
	for i := range a.heights {
		if a.heights[i] != b.heights[i] {
			t.Fatalf("vertex %d differs between identical seeds", i)
		}
	}
	other := testConfig()
	other.Seed = 8
	c := mustGenerate(t, other)
	same := true
	for i := range a.heights {
		if a.heights[i] != c.heights[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical terrain")
	}
}

func TestTerrainHasRelief(t *testing.T) {
	m := mustGenerate(t, testConfig())
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, h := range m.heights {
		lo = math.Min(lo, h)
		hi = math.Max(hi, h)
	}
	if hi-lo < 50 {
		t.Errorf("terrain relief %g m too flat for 200 m amplitude", hi-lo)
	}
	if hi-lo > 2000 {
		t.Errorf("terrain relief %g m implausibly large", hi-lo)
	}
}

func TestElevationInterpolationContinuous(t *testing.T) {
	m := mustGenerate(t, testConfig())
	// Tiny moves must produce tiny elevation changes.
	p := geo.Point{X: 1000, Y: 1000}
	base := m.ElevationAt(p)
	for _, dx := range []float64{0.5, 1, 2} {
		delta := math.Abs(m.ElevationAt(geo.Point{X: p.X + dx, Y: p.Y}) - base)
		if delta > 10 {
			t.Errorf("elevation jumped %g m over %g m horizontally", delta, dx)
		}
	}
	// Out-of-range points clamp instead of panicking.
	_ = m.ElevationAt(geo.Point{X: -500, Y: 1e9})
}

func TestProfileEndpoints(t *testing.T) {
	m := mustGenerate(t, testConfig())
	a := geo.Point{X: 100, Y: 200}
	b := geo.Point{X: 4000, Y: 3500}
	prof := m.Profile(a, b, 32)
	if len(prof) != 32 {
		t.Fatalf("profile has %d samples", len(prof))
	}
	if math.Abs(prof[0]-m.ElevationAt(a)) > 1e-9 {
		t.Error("profile start does not match endpoint elevation")
	}
	if math.Abs(prof[31]-m.ElevationAt(b)) > 1e-9 {
		t.Error("profile end does not match endpoint elevation")
	}
}

func TestKnifeEdgeLossProperties(t *testing.T) {
	m := mustGenerate(t, testConfig())
	a := geo.Point{X: 200, Y: 200}
	b := geo.Point{X: 5000, Y: 4800}
	// Loss is never negative and is finite.
	loss := m.KnifeEdgeLossDB(a, b, 10, 10, 600)
	if loss < 0 || math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("implausible diffraction loss %g", loss)
	}
	// Raising both antennas high above the relief clears the path.
	clear := m.KnifeEdgeLossDB(a, b, 5000, 5000, 600)
	if clear != 0 {
		t.Errorf("5 km masts still obstructed: %g dB", clear)
	}
	// Burying the antennas cannot reduce the loss.
	buried := m.KnifeEdgeLossDB(a, b, 0, 0, 600)
	if buried < loss {
		t.Errorf("lower antennas reduced loss: %g < %g", buried, loss)
	}
	// Degenerate inputs are harmless.
	if got := m.KnifeEdgeLossDB(a, a, 10, 10, 600); got != 0 {
		t.Errorf("zero-length path lost %g dB", got)
	}
	if got := m.KnifeEdgeLossDB(a, b, 10, 10, 0); got != 0 {
		t.Errorf("zero frequency lost %g dB", got)
	}
}

func TestLinkModelAddsTerrainLoss(t *testing.T) {
	m := mustGenerate(t, testConfig())
	base := propagation.FreeSpace{FreqMHz: 600}
	// Find an obstructed link so the test is meaningful.
	var a, b geo.Point
	found := false
	for i := 0; i < 50 && !found; i++ {
		a = geo.Point{X: float64(100 + i*37), Y: 150}
		b = geo.Point{X: 5200, Y: float64(300 + i*53)}
		if m.KnifeEdgeLossDB(a, b, 5, 5, 600) > 0 {
			found = true
		}
	}
	if !found {
		t.Skip("terrain produced no obstructed links for this seed")
	}
	link := m.LinkModel(base, a, b, 5, 5, 600)
	d := a.Distance(b)
	if got, want := link.LossDB(d), base.LossDB(d); got <= want {
		t.Errorf("terrain link loss %g dB not above base %g dB", got, want)
	}
	if link.Name() != "free-space+terrain" {
		t.Errorf("Name = %q", link.Name())
	}
	// Repeated queries reuse the cached diffraction term.
	first := link.LossDB(d)
	if second := link.LossDB(d); second != first {
		t.Error("link loss not stable across calls")
	}
}

func TestSizeRounding(t *testing.T) {
	cfg := testConfig()
	cfg.Size = 20 // not 2^n + 1
	m := mustGenerate(t, cfg)
	if m.size != 33 {
		t.Errorf("size rounded to %d, want 33", m.size)
	}
	if m.Extent() != float64(32)*cfg.SpacingMeters {
		t.Errorf("extent = %g", m.Extent())
	}
}
