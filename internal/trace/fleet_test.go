package trace

import (
	"testing"
	"time"
)

func fleetConfig() SUConfig {
	cfg := suConfig()
	cfg.Fleet = 20
	cfg.FleetZipfS = 1.4
	cfg.Mobility = 0.1
	cfg.ChannelZipfS = 1.5
	cfg.EIRPLevels = 4
	cfg.RequestsPerHour = 300
	return cfg
}

func TestSUFleetValidation(t *testing.T) {
	mutations := []func(*SUConfig){
		func(c *SUConfig) { c.Fleet = -1 },
		func(c *SUConfig) { c.FleetZipfS = 0.5 },
		func(c *SUConfig) { c.Mobility = -0.1 },
		func(c *SUConfig) { c.Mobility = 1.5 },
		func(c *SUConfig) { c.ChannelZipfS = 0.5 },
		func(c *SUConfig) { c.EIRPLevels = -1 },
	}
	for i, mut := range mutations {
		c := fleetConfig()
		mut(&c)
		if _, err := SUWorkload(c); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// The PR-8 decision cache is scoped per SU, so a workload that never
// revisits an SU can never hit it. A concentrated fleet must produce
// repeat SUs — this is the regression test for the fresh-id-per-
// arrival bug.
func TestSUFleetProducesRepeatSUs(t *testing.T) {
	cfg := fleetConfig()
	reqs, err := SUWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) < cfg.Fleet*2 {
		t.Fatalf("only %d requests, need enough to force revisits", len(reqs))
	}
	counts := make(map[string]int)
	for _, r := range reqs {
		counts[r.SU]++
	}
	if len(counts) > cfg.Fleet {
		t.Fatalf("saw %d distinct SUs, fleet is only %d", len(counts), cfg.Fleet)
	}
	repeats := 0
	max := 0
	for _, n := range counts {
		if n > 1 {
			repeats++
		}
		if n > max {
			max = n
		}
	}
	if repeats == 0 {
		t.Fatal("no SU appeared twice: fleet attribution is broken")
	}
	// Zipf skew concentrates load well beyond a uniform share.
	uniform := len(reqs) / cfg.Fleet
	if max <= 2*uniform {
		t.Errorf("hottest SU has %d requests, want > 2x uniform share %d", max, uniform)
	}
}

func TestSUFleetHomeBlocksAndMobility(t *testing.T) {
	pinned := fleetConfig()
	pinned.Mobility = 0
	reqs, err := SUWorkload(pinned)
	if err != nil {
		t.Fatal(err)
	}
	home := make(map[string]int)
	for _, r := range reqs {
		if prev, ok := home[r.SU]; ok && prev != int(r.Block) {
			t.Fatalf("SU %s moved blocks with Mobility=0", r.SU)
		}
		home[r.SU] = int(r.Block)
	}

	roaming := fleetConfig()
	roaming.Mobility = 0.8
	reqs, err = SUWorkload(roaming)
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	last := make(map[string]int)
	for _, r := range reqs {
		if prev, ok := last[r.SU]; ok && prev != int(r.Block) {
			moved = true
		}
		last[r.SU] = int(r.Block)
	}
	if !moved {
		t.Error("no SU ever changed blocks with Mobility=0.8")
	}
}

func TestSUFleetEIRPLevelsQuantise(t *testing.T) {
	cfg := fleetConfig()
	reqs, err := SUWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	levels := make(map[int64]bool)
	for _, r := range reqs {
		for _, p := range r.EIRPUnits {
			levels[p] = true
		}
	}
	if len(levels) > cfg.EIRPLevels {
		t.Errorf("saw %d distinct EIRP values, want at most %d levels", len(levels), cfg.EIRPLevels)
	}
	if len(levels) < 2 {
		t.Errorf("saw %d distinct EIRP values, quantisation collapsed the spread", len(levels))
	}
}

func TestSUFleetChannelZipf(t *testing.T) {
	cfg := fleetConfig()
	cfg.ChannelZipfS = 2.0
	cfg.Horizon = 24 * time.Hour
	reqs, err := SUWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hist := make([]int, cfg.Channels)
	for _, r := range reqs {
		for c := range r.EIRPUnits {
			hist[c]++
		}
	}
	if hist[0] <= hist[cfg.Channels-1]*2 {
		t.Errorf("channel 0 (%d) not clearly more popular than channel %d (%d)",
			hist[0], cfg.Channels-1, hist[cfg.Channels-1])
	}
}

func TestSUFleetDeterministic(t *testing.T) {
	a, err := SUWorkload(fleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SUWorkload(fleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].SU != b[i].SU || a[i].Block != b[i].Block {
			t.Fatalf("request %d differs", i)
		}
		for c, p := range a[i].EIRPUnits {
			if b[i].EIRPUnits[c] != p {
				t.Fatalf("request %d channel %d power differs", i, c)
			}
		}
	}
}

// Once a PU is off, further off-draws are no-ops and must not emit
// another Channel:-1 switch. The counts are pinned against seed 42:
// before the fix the off-heavy config emitted 227 events (121 offs);
// the 60 duplicate off->off events are exactly what the suppression
// removes. The base config never emitted consecutive offs by luck,
// so its count pins the legacy random stream as unchanged.
func TestPUScheduleSuppressesOffOff(t *testing.T) {
	base := puConfig()
	events, err := PUSchedule(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 195 {
		t.Errorf("base config: got %d events, pinned 195", len(events))
	}

	heavy := puConfig()
	heavy.OffProbability = 0.5
	events, err = PUSchedule(heavy)
	if err != nil {
		t.Fatal(err)
	}
	offs := 0
	lastOff := make(map[string]bool)
	for _, e := range events {
		if e.Channel == -1 {
			offs++
			if lastOff[string(e.PU)] {
				t.Fatalf("PU %s emitted consecutive off events", e.PU)
			}
		}
		lastOff[string(e.PU)] = e.Channel == -1
	}
	if len(events) != 167 || offs != 61 {
		t.Errorf("off-heavy config: got %d events (%d offs), pinned 167 (61 offs)", len(events), offs)
	}
}

// Diurnal thinning must concentrate switches in the high-rate half of
// the period while leaving the amplitude-0 stream untouched (pinned
// by TestPUScheduleSuppressesOffOff above).
func TestPUScheduleDiurnalModulation(t *testing.T) {
	cfg := puConfig()
	cfg.PUs = 200
	cfg.DiurnalAmplitude = 1
	cfg.DiurnalPeriod = 8 * time.Hour
	cfg.Horizon = 8 * time.Hour
	events, err := PUSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// sin is positive over the first half-period (rate up to 2x the
	// mean) and negative over the second (rate down to 0).
	first, second := 0, 0
	for _, e := range events {
		if e.At == 0 {
			continue // initial tune-ins are not rate-driven
		}
		if e.At < cfg.Horizon/2 {
			first++
		} else {
			second++
		}
	}
	if first <= 2*second {
		t.Errorf("diurnal peak half has %d events vs trough half %d, want > 2x", first, second)
	}

	bad := puConfig()
	bad.DiurnalAmplitude = 1.5
	if _, err := PUSchedule(bad); err == nil {
		t.Error("DiurnalAmplitude > 1 accepted")
	}
	bad = puConfig()
	bad.DiurnalPeriod = -time.Hour
	if _, err := PUSchedule(bad); err == nil {
		t.Error("negative DiurnalPeriod accepted")
	}
}
