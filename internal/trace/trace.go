// Package trace generates deterministic workloads for experiments:
// PU virtual-channel switching (the paper cites 2.3-2.7 switches per
// hour per viewer, §VI-A), Poisson SU request arrivals, and
// Zipf-popular channel choices. Everything derives from an explicit
// seed so experiment runs are reproducible.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"pisa/internal/geo"
	"pisa/internal/watch"
)

// PUSwitch is one PU tuning event: the receiver switches to Channel
// (or off, when Channel is -1) at time At.
type PUSwitch struct {
	At      time.Duration
	PU      watch.PUID
	Block   geo.BlockID
	Channel int
}

// PUConfig parameterises the PU switching schedule.
type PUConfig struct {
	// Seed makes the schedule reproducible.
	Seed int64
	// PUs is the number of TV receivers.
	PUs int
	// Blocks is the number of grid blocks receivers are placed in.
	Blocks int
	// Channels is the number of selectable channels C.
	Channels int
	// SwitchesPerHour is the mean per-receiver tuning rate (the
	// paper cites 2.3-2.7 for physical-channel switches).
	SwitchesPerHour float64
	// OffProbability is the chance a tuning event turns the
	// receiver off instead of changing channel.
	OffProbability float64
	// ZipfS skews channel popularity (1.1-2.0 typical); 0 disables
	// the skew (uniform channels).
	ZipfS float64
	// VirtualsPerPhysical models the paper's §VI-A observation that
	// viewers mostly hop between *virtual* channels multiplexed onto
	// one physical channel: only physical-channel changes reach the
	// SDC. A value v > 1 maps v consecutive virtual channels onto
	// each physical channel, so roughly (v-1)/v of tuning events are
	// absorbed locally and never emitted. 0 or 1 disables the
	// distinction.
	VirtualsPerPhysical int
	// Horizon is the schedule length.
	Horizon time.Duration
}

// Validate reports configuration errors.
func (c PUConfig) Validate() error {
	switch {
	case c.PUs <= 0:
		return fmt.Errorf("trace: PUs must be positive, got %d", c.PUs)
	case c.Blocks <= 0:
		return fmt.Errorf("trace: Blocks must be positive, got %d", c.Blocks)
	case c.Channels <= 0:
		return fmt.Errorf("trace: Channels must be positive, got %d", c.Channels)
	case c.SwitchesPerHour <= 0:
		return fmt.Errorf("trace: SwitchesPerHour must be positive, got %g", c.SwitchesPerHour)
	case c.OffProbability < 0 || c.OffProbability >= 1:
		return fmt.Errorf("trace: OffProbability %g outside [0, 1)", c.OffProbability)
	case c.ZipfS != 0 && c.ZipfS <= 1:
		return fmt.Errorf("trace: ZipfS must be > 1 (or 0 for uniform), got %g", c.ZipfS)
	case c.VirtualsPerPhysical < 0:
		return fmt.Errorf("trace: VirtualsPerPhysical must be non-negative, got %d", c.VirtualsPerPhysical)
	case c.Horizon <= 0:
		return fmt.Errorf("trace: Horizon must be positive, got %v", c.Horizon)
	}
	return nil
}

// PUSchedule generates the tuning events for every PU over the
// horizon, time-ordered. Each PU gets a home block (stable across the
// schedule, TV receivers don't move) and an initial tune-in at t=0.
// With VirtualsPerPhysical > 1, tuning picks among virtual channels
// and only emits an event when the underlying physical channel
// changes, matching the paper's update-rate argument.
func PUSchedule(cfg PUConfig) ([]PUSwitch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	virtuals := cfg.VirtualsPerPhysical
	if virtuals < 1 {
		virtuals = 1
	}
	virtualChannels := cfg.Channels * virtuals
	var zipf *rand.Zipf
	if cfg.ZipfS > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(virtualChannels-1))
	}
	// pickChannel returns a virtual channel; /virtuals maps it onto
	// its physical channel.
	pickChannel := func() int {
		if zipf != nil {
			return int(zipf.Uint64())
		}
		return rng.Intn(virtualChannels)
	}
	meanGap := time.Duration(float64(time.Hour) / cfg.SwitchesPerHour)
	var events []PUSwitch
	for i := 0; i < cfg.PUs; i++ {
		id := watch.PUID(fmt.Sprintf("pu-%03d", i))
		block := geo.BlockID(rng.Intn(cfg.Blocks))
		physical := pickChannel() / virtuals
		events = append(events, PUSwitch{At: 0, PU: id, Block: block, Channel: physical})
		t := time.Duration(0)
		for {
			t += time.Duration(rng.ExpFloat64() * float64(meanGap))
			if t >= cfg.Horizon {
				break
			}
			if rng.Float64() < cfg.OffProbability {
				physical = -1
				events = append(events, PUSwitch{At: t, PU: id, Block: block, Channel: -1})
				continue
			}
			next := pickChannel() / virtuals
			if next == physical {
				// Virtual-channel hop inside the same physical
				// channel: no SDC update needed (§VI-A).
				continue
			}
			physical = next
			events = append(events, PUSwitch{At: t, PU: id, Block: block, Channel: physical})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events, nil
}

// SURequest is one secondary-user transmission request.
type SURequest struct {
	At    time.Duration
	SU    string
	Block geo.BlockID
	// EIRPUnits maps requested channel to EIRP in integer units.
	EIRPUnits map[int]int64
}

// SUConfig parameterises the SU arrival process.
type SUConfig struct {
	// Seed makes the workload reproducible.
	Seed int64
	// Blocks is the number of grid blocks SUs appear in.
	Blocks int
	// Channels is the number of channels C.
	Channels int
	// MaxEIRPUnits caps requested EIRP (S_max^SU in units).
	MaxEIRPUnits int64
	// RequestsPerHour is the aggregate arrival rate.
	RequestsPerHour float64
	// ChannelsPerRequest is the mean number of channels each
	// request asks for (at least 1 is always requested).
	ChannelsPerRequest float64
	// Horizon is the workload length.
	Horizon time.Duration
}

// Validate reports configuration errors.
func (c SUConfig) Validate() error {
	switch {
	case c.Blocks <= 0:
		return fmt.Errorf("trace: Blocks must be positive, got %d", c.Blocks)
	case c.Channels <= 0:
		return fmt.Errorf("trace: Channels must be positive, got %d", c.Channels)
	case c.MaxEIRPUnits <= 0:
		return fmt.Errorf("trace: MaxEIRPUnits must be positive, got %d", c.MaxEIRPUnits)
	case c.RequestsPerHour <= 0:
		return fmt.Errorf("trace: RequestsPerHour must be positive, got %g", c.RequestsPerHour)
	case c.ChannelsPerRequest < 1:
		return fmt.Errorf("trace: ChannelsPerRequest must be >= 1, got %g", c.ChannelsPerRequest)
	case c.Horizon <= 0:
		return fmt.Errorf("trace: Horizon must be positive, got %v", c.Horizon)
	}
	return nil
}

// SUWorkload generates Poisson request arrivals over the horizon,
// time-ordered. EIRPs are log-uniform between 1/1000 of the cap and
// the cap, mimicking the spread of device classes.
func SUWorkload(cfg SUConfig) ([]SURequest, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	meanGap := time.Duration(float64(time.Hour) / cfg.RequestsPerHour)
	var out []SURequest
	t := time.Duration(0)
	for i := 0; ; i++ {
		t += time.Duration(rng.ExpFloat64() * float64(meanGap))
		if t >= cfg.Horizon {
			break
		}
		eirp := make(map[int]int64)
		// Geometric number of channels with the requested mean.
		n := 1
		for rng.Float64() < 1-1/cfg.ChannelsPerRequest && n < cfg.Channels {
			n++
		}
		for len(eirp) < n {
			c := rng.Intn(cfg.Channels)
			if _, ok := eirp[c]; ok {
				continue
			}
			// Log-uniform power over three decades.
			p := float64(cfg.MaxEIRPUnits) / math.Pow(10, rng.Float64()*3)
			if p < 1 {
				p = 1
			}
			eirp[c] = int64(p)
		}
		out = append(out, SURequest{
			At:        t,
			SU:        fmt.Sprintf("su-%04d", i),
			Block:     geo.BlockID(rng.Intn(cfg.Blocks)),
			EIRPUnits: eirp,
		})
	}
	return out, nil
}
