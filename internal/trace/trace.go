// Package trace generates deterministic workloads for experiments:
// PU virtual-channel switching (the paper cites 2.3-2.7 switches per
// hour per viewer, §VI-A), Poisson SU request arrivals, and
// Zipf-popular channel choices. Everything derives from an explicit
// seed so experiment runs are reproducible.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"pisa/internal/geo"
	"pisa/internal/watch"
)

// PUSwitch is one PU tuning event: the receiver switches to Channel
// (or off, when Channel is -1) at time At.
type PUSwitch struct {
	At      time.Duration
	PU      watch.PUID
	Block   geo.BlockID
	Channel int
}

// PUConfig parameterises the PU switching schedule.
type PUConfig struct {
	// Seed makes the schedule reproducible.
	Seed int64
	// PUs is the number of TV receivers.
	PUs int
	// Blocks is the number of grid blocks receivers are placed in.
	Blocks int
	// Channels is the number of selectable channels C.
	Channels int
	// SwitchesPerHour is the mean per-receiver tuning rate (the
	// paper cites 2.3-2.7 for physical-channel switches).
	SwitchesPerHour float64
	// OffProbability is the chance a tuning event turns the
	// receiver off instead of changing channel.
	OffProbability float64
	// ZipfS skews channel popularity (1.1-2.0 typical); 0 disables
	// the skew (uniform channels).
	ZipfS float64
	// VirtualsPerPhysical models the paper's §VI-A observation that
	// viewers mostly hop between *virtual* channels multiplexed onto
	// one physical channel: only physical-channel changes reach the
	// SDC. A value v > 1 maps v consecutive virtual channels onto
	// each physical channel, so roughly (v-1)/v of tuning events are
	// absorbed locally and never emitted. 0 or 1 disables the
	// distinction.
	VirtualsPerPhysical int
	// DiurnalAmplitude modulates the switching rate sinusoidally over
	// DiurnalPeriod: rate(t) = SwitchesPerHour * (1 + A*sin(2πt/P)),
	// the TV-viewing day of §VI-A (quiet mornings, prime-time peaks).
	// Implemented by thinning a peak-rate Poisson process, so the
	// schedule stays seeded-deterministic. 0 disables the modulation
	// (the homogeneous legacy process, identical random stream).
	DiurnalAmplitude float64
	// DiurnalPeriod is the modulation period; 0 selects 24 h. Only
	// consulted when DiurnalAmplitude > 0.
	DiurnalPeriod time.Duration
	// Horizon is the schedule length.
	Horizon time.Duration
}

// Validate reports configuration errors.
func (c PUConfig) Validate() error {
	switch {
	case c.PUs <= 0:
		return fmt.Errorf("trace: PUs must be positive, got %d", c.PUs)
	case c.Blocks <= 0:
		return fmt.Errorf("trace: Blocks must be positive, got %d", c.Blocks)
	case c.Channels <= 0:
		return fmt.Errorf("trace: Channels must be positive, got %d", c.Channels)
	case c.SwitchesPerHour <= 0:
		return fmt.Errorf("trace: SwitchesPerHour must be positive, got %g", c.SwitchesPerHour)
	case c.OffProbability < 0 || c.OffProbability >= 1:
		return fmt.Errorf("trace: OffProbability %g outside [0, 1)", c.OffProbability)
	case c.ZipfS != 0 && c.ZipfS <= 1:
		return fmt.Errorf("trace: ZipfS must be > 1 (or 0 for uniform), got %g", c.ZipfS)
	case c.VirtualsPerPhysical < 0:
		return fmt.Errorf("trace: VirtualsPerPhysical must be non-negative, got %d", c.VirtualsPerPhysical)
	case c.DiurnalAmplitude < 0 || c.DiurnalAmplitude > 1:
		return fmt.Errorf("trace: DiurnalAmplitude %g outside [0, 1]", c.DiurnalAmplitude)
	case c.DiurnalPeriod < 0:
		return fmt.Errorf("trace: DiurnalPeriod must be non-negative, got %v", c.DiurnalPeriod)
	case c.Horizon <= 0:
		return fmt.Errorf("trace: Horizon must be positive, got %v", c.Horizon)
	}
	return nil
}

// PUSchedule generates the tuning events for every PU over the
// horizon, time-ordered. Each PU gets a home block (stable across the
// schedule, TV receivers don't move) and an initial tune-in at t=0.
// With VirtualsPerPhysical > 1, tuning picks among virtual channels
// and only emits an event when the underlying physical channel
// changes, matching the paper's update-rate argument.
func PUSchedule(cfg PUConfig) ([]PUSwitch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	virtuals := cfg.VirtualsPerPhysical
	if virtuals < 1 {
		virtuals = 1
	}
	virtualChannels := cfg.Channels * virtuals
	var zipf *rand.Zipf
	if cfg.ZipfS > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(virtualChannels-1))
	}
	// pickChannel returns a virtual channel; /virtuals maps it onto
	// its physical channel.
	pickChannel := func() int {
		if zipf != nil {
			return int(zipf.Uint64())
		}
		return rng.Intn(virtualChannels)
	}
	// With diurnal modulation the candidate process runs at the peak
	// rate and each candidate is accepted with probability
	// rate(t)/peak (Poisson thinning) — seeded-deterministic, and the
	// amplitude-0 path draws the identical random stream the legacy
	// homogeneous process did.
	peakRate := cfg.SwitchesPerHour * (1 + cfg.DiurnalAmplitude)
	period := cfg.DiurnalPeriod
	if period == 0 {
		period = 24 * time.Hour
	}
	accept := func(t time.Duration) bool {
		if cfg.DiurnalAmplitude == 0 {
			return true
		}
		rate := cfg.SwitchesPerHour *
			(1 + cfg.DiurnalAmplitude*math.Sin(2*math.Pi*float64(t)/float64(period)))
		return rng.Float64() < rate/peakRate
	}
	meanGap := time.Duration(float64(time.Hour) / peakRate)
	var events []PUSwitch
	for i := 0; i < cfg.PUs; i++ {
		id := watch.PUID(fmt.Sprintf("pu-%03d", i))
		block := geo.BlockID(rng.Intn(cfg.Blocks))
		physical := pickChannel() / virtuals
		events = append(events, PUSwitch{At: 0, PU: id, Block: block, Channel: physical})
		t := time.Duration(0)
		for {
			t += time.Duration(rng.ExpFloat64() * float64(meanGap))
			if t >= cfg.Horizon {
				break
			}
			if !accept(t) {
				continue
			}
			if rng.Float64() < cfg.OffProbability {
				if physical == -1 {
					// Already off: a second off-draw is a no-op, not
					// another SDC update. Mirrors the same-physical-
					// channel suppression below — without it every
					// extra off-draw inflated the update rate the
					// §VI-A argument depends on.
					continue
				}
				physical = -1
				events = append(events, PUSwitch{At: t, PU: id, Block: block, Channel: -1})
				continue
			}
			next := pickChannel() / virtuals
			if next == physical {
				// Virtual-channel hop inside the same physical
				// channel: no SDC update needed (§VI-A).
				continue
			}
			physical = next
			events = append(events, PUSwitch{At: t, PU: id, Block: block, Channel: physical})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events, nil
}

// SURequest is one secondary-user transmission request.
type SURequest struct {
	At    time.Duration
	SU    string
	Block geo.BlockID
	// EIRPUnits maps requested channel to EIRP in integer units.
	EIRPUnits map[int]int64
}

// SUConfig parameterises the SU arrival process.
type SUConfig struct {
	// Seed makes the workload reproducible.
	Seed int64
	// Blocks is the number of grid blocks SUs appear in.
	Blocks int
	// Channels is the number of channels C.
	Channels int
	// MaxEIRPUnits caps requested EIRP (S_max^SU in units).
	MaxEIRPUnits int64
	// RequestsPerHour is the aggregate arrival rate.
	RequestsPerHour float64
	// ChannelsPerRequest is the mean number of channels each
	// request asks for (at least 1 is always requested).
	ChannelsPerRequest float64
	// Fleet is the number of distinct SUs requests are attributed
	// to. 0 keeps the legacy behaviour: every arrival mints a fresh
	// SU id (no revisits, so per-SU decision caches never hit and
	// every request registers a new SU with the STP). With Fleet > 0
	// the workload draws each arrival's SU from a fixed fleet of
	// `su-%04d` members, each with a home block.
	Fleet int
	// FleetZipfS skews request attribution across the fleet (heavy
	// users dominate, s > 1); 0 attributes uniformly. Only consulted
	// when Fleet > 0.
	FleetZipfS float64
	// Mobility is the probability a fleet member's request is issued
	// away from its home block (a uniform roam over the grid); the
	// member then stays at the new block until it roams again. 0
	// pins every member to its home block. Only consulted when
	// Fleet > 0.
	Mobility float64
	// ChannelZipfS skews channel popularity (s > 1, TV-style
	// head-heavy demand); 0 picks channels uniformly. Only consulted
	// when Fleet > 0 (the legacy path predates the knob and must
	// keep its random stream).
	ChannelZipfS float64
	// EIRPLevels quantises the log-uniform EIRP draw onto this many
	// discrete device-class levels, so a member re-requesting the
	// same channels reproduces the same request shape (a decision-
	// cache hit). 0 keeps the continuous draw. Only consulted when
	// Fleet > 0.
	EIRPLevels int
	// Horizon is the workload length.
	Horizon time.Duration
}

// Validate reports configuration errors.
func (c SUConfig) Validate() error {
	switch {
	case c.Blocks <= 0:
		return fmt.Errorf("trace: Blocks must be positive, got %d", c.Blocks)
	case c.Channels <= 0:
		return fmt.Errorf("trace: Channels must be positive, got %d", c.Channels)
	case c.MaxEIRPUnits <= 0:
		return fmt.Errorf("trace: MaxEIRPUnits must be positive, got %d", c.MaxEIRPUnits)
	case c.RequestsPerHour <= 0:
		return fmt.Errorf("trace: RequestsPerHour must be positive, got %g", c.RequestsPerHour)
	case c.ChannelsPerRequest < 1:
		return fmt.Errorf("trace: ChannelsPerRequest must be >= 1, got %g", c.ChannelsPerRequest)
	case c.Fleet < 0:
		return fmt.Errorf("trace: Fleet must be non-negative, got %d", c.Fleet)
	case c.FleetZipfS != 0 && c.FleetZipfS <= 1:
		return fmt.Errorf("trace: FleetZipfS must be > 1 (or 0 for uniform), got %g", c.FleetZipfS)
	case c.Mobility < 0 || c.Mobility > 1:
		return fmt.Errorf("trace: Mobility %g outside [0, 1]", c.Mobility)
	case c.ChannelZipfS != 0 && c.ChannelZipfS <= 1:
		return fmt.Errorf("trace: ChannelZipfS must be > 1 (or 0 for uniform), got %g", c.ChannelZipfS)
	case c.EIRPLevels < 0:
		return fmt.Errorf("trace: EIRPLevels must be non-negative, got %d", c.EIRPLevels)
	case c.Horizon <= 0:
		return fmt.Errorf("trace: Horizon must be positive, got %v", c.Horizon)
	}
	return nil
}

// SUWorkload generates Poisson request arrivals over the horizon,
// time-ordered. EIRPs are log-uniform between 1/1000 of the cap and
// the cap, mimicking the spread of device classes.
//
// With Fleet > 0 each arrival is attributed to one of a fixed fleet
// of SUs (Zipf-skewed by FleetZipfS), each with a home block it roams
// away from with probability Mobility, so workloads exhibit the
// revisit behaviour real deployments have — repeat SUs are what make
// the per-SU decision cache (and STP registration reuse) observable.
// Fleet == 0 preserves the legacy stream exactly: a fresh SU id per
// arrival.
func SUWorkload(cfg SUConfig) ([]SURequest, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Fleet state, materialised up front so member identity doesn't
	// depend on how many arrivals precede the first attribution.
	var (
		memberBlock []geo.BlockID
		fleetZipf   *rand.Zipf
		fleetPerm   []int
		channelZipf *rand.Zipf
	)
	if cfg.Fleet > 0 {
		memberBlock = make([]geo.BlockID, cfg.Fleet)
		for m := range memberBlock {
			memberBlock[m] = geo.BlockID(rng.Intn(cfg.Blocks))
		}
		if cfg.FleetZipfS > 1 {
			fleetZipf = rand.NewZipf(rng, cfg.FleetZipfS, 1, uint64(cfg.Fleet-1))
			// Zipf rank 0 is the hottest member; permute ranks onto
			// member indices so the heavy hitters aren't always the
			// low-numbered ids.
			fleetPerm = rng.Perm(cfg.Fleet)
		}
		if cfg.ChannelZipfS > 1 {
			channelZipf = rand.NewZipf(rng, cfg.ChannelZipfS, 1, uint64(cfg.Channels-1))
		}
	}
	pickMember := func() int {
		if fleetZipf != nil {
			return fleetPerm[int(fleetZipf.Uint64())]
		}
		return rng.Intn(cfg.Fleet)
	}
	pickChannel := func() int {
		if channelZipf != nil {
			return int(channelZipf.Uint64())
		}
		return rng.Intn(cfg.Channels)
	}

	meanGap := time.Duration(float64(time.Hour) / cfg.RequestsPerHour)
	var out []SURequest
	t := time.Duration(0)
	for i := 0; ; i++ {
		t += time.Duration(rng.ExpFloat64() * float64(meanGap))
		if t >= cfg.Horizon {
			break
		}
		eirp := make(map[int]int64)
		// Geometric number of channels with the requested mean.
		n := 1
		for rng.Float64() < 1-1/cfg.ChannelsPerRequest && n < cfg.Channels {
			n++
		}
		for len(eirp) < n {
			c := pickChannel()
			if _, ok := eirp[c]; ok {
				continue
			}
			// Log-uniform power over three decades, optionally
			// quantised onto EIRPLevels discrete device classes.
			d := rng.Float64() * 3
			if cfg.Fleet > 0 && cfg.EIRPLevels > 0 {
				d = 3 * float64(int(d/3*float64(cfg.EIRPLevels))) / float64(cfg.EIRPLevels)
			}
			p := float64(cfg.MaxEIRPUnits) / math.Pow(10, d)
			if p < 1 {
				p = 1
			}
			eirp[c] = int64(p)
		}
		var su string
		var block geo.BlockID
		if cfg.Fleet > 0 {
			m := pickMember()
			su = fmt.Sprintf("su-%04d", m)
			if cfg.Mobility > 0 && rng.Float64() < cfg.Mobility {
				memberBlock[m] = geo.BlockID(rng.Intn(cfg.Blocks))
			}
			block = memberBlock[m]
		} else {
			su = fmt.Sprintf("su-%04d", i)
			block = geo.BlockID(rng.Intn(cfg.Blocks))
		}
		out = append(out, SURequest{
			At:        t,
			SU:        su,
			Block:     block,
			EIRPUnits: eirp,
		})
	}
	return out, nil
}
