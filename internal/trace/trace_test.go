package trace

import (
	"testing"
	"time"
)

func puConfig() PUConfig {
	return PUConfig{
		Seed:            42,
		PUs:             20,
		Blocks:          600,
		Channels:        10,
		SwitchesPerHour: 2.5,
		OffProbability:  0.1,
		ZipfS:           1.3,
		Horizon:         4 * time.Hour,
	}
}

func suConfig() SUConfig {
	return SUConfig{
		Seed:               42,
		Blocks:             600,
		Channels:           10,
		MaxEIRPUnits:       4_000_000_000_000,
		RequestsPerHour:    60,
		ChannelsPerRequest: 2,
		Horizon:            4 * time.Hour,
	}
}

func TestPUConfigValidation(t *testing.T) {
	mutations := []func(*PUConfig){
		func(c *PUConfig) { c.PUs = 0 },
		func(c *PUConfig) { c.Blocks = 0 },
		func(c *PUConfig) { c.Channels = 0 },
		func(c *PUConfig) { c.SwitchesPerHour = 0 },
		func(c *PUConfig) { c.OffProbability = 1 },
		func(c *PUConfig) { c.OffProbability = -0.1 },
		func(c *PUConfig) { c.ZipfS = 0.5 },
		func(c *PUConfig) { c.Horizon = 0 },
	}
	for i, mut := range mutations {
		c := puConfig()
		mut(&c)
		if _, err := PUSchedule(c); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPUScheduleDeterministic(t *testing.T) {
	a, err := PUSchedule(puConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := PUSchedule(puConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	other := puConfig()
	other.Seed = 43
	c, err := PUSchedule(other)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical schedules")
		}
	}
}

func TestPUScheduleShape(t *testing.T) {
	cfg := puConfig()
	events, err := PUSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every PU tunes in at t=0 plus roughly rate*horizon switches:
	// 20 PUs * 2.5/h * 4h = 200 expected, give a wide tolerance.
	if len(events) < cfg.PUs+100 || len(events) > cfg.PUs+400 {
		t.Errorf("got %d events, expected about %d", len(events), cfg.PUs+200)
	}
	blocks := make(map[watchPUID]int)
	offs := 0
	for i, e := range events {
		if i > 0 && e.At < events[i-1].At {
			t.Fatal("events not time-ordered")
		}
		if e.At < 0 || e.At >= cfg.Horizon {
			t.Fatalf("event outside horizon: %v", e.At)
		}
		if e.Channel < -1 || e.Channel >= cfg.Channels {
			t.Fatalf("channel %d out of range", e.Channel)
		}
		if e.Channel == -1 {
			offs++
		}
		if prev, ok := blocks[watchPUID(e.PU)]; ok && prev != int(e.Block) {
			t.Fatalf("PU %s moved blocks", e.PU)
		}
		blocks[watchPUID(e.PU)] = int(e.Block)
	}
	if offs == 0 {
		t.Error("no off events despite OffProbability > 0")
	}
	if len(blocks) != cfg.PUs {
		t.Errorf("saw %d distinct PUs, want %d", len(blocks), cfg.PUs)
	}
}

// watchPUID avoids importing watch just for a map key in tests.
type watchPUID string

func TestZipfSkewsChannels(t *testing.T) {
	cfg := puConfig()
	cfg.ZipfS = 2.0
	cfg.PUs = 200
	events, err := PUSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hist := make([]int, cfg.Channels)
	for _, e := range events {
		if e.Channel >= 0 {
			hist[e.Channel]++
		}
	}
	if hist[0] <= hist[cfg.Channels-1]*2 {
		t.Errorf("channel 0 (%d) not clearly more popular than channel %d (%d)",
			hist[0], cfg.Channels-1, hist[cfg.Channels-1])
	}
}

func TestSUConfigValidation(t *testing.T) {
	mutations := []func(*SUConfig){
		func(c *SUConfig) { c.Blocks = 0 },
		func(c *SUConfig) { c.Channels = 0 },
		func(c *SUConfig) { c.MaxEIRPUnits = 0 },
		func(c *SUConfig) { c.RequestsPerHour = 0 },
		func(c *SUConfig) { c.ChannelsPerRequest = 0.5 },
		func(c *SUConfig) { c.Horizon = 0 },
	}
	for i, mut := range mutations {
		c := suConfig()
		mut(&c)
		if _, err := SUWorkload(c); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSUWorkloadShape(t *testing.T) {
	cfg := suConfig()
	reqs, err := SUWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 60/h * 4h = 240 expected arrivals.
	if len(reqs) < 140 || len(reqs) > 360 {
		t.Errorf("got %d requests, expected about 240", len(reqs))
	}
	ids := make(map[string]bool)
	for i, r := range reqs {
		if i > 0 && r.At < reqs[i-1].At {
			t.Fatal("requests not time-ordered")
		}
		if int(r.Block) < 0 || int(r.Block) >= cfg.Blocks {
			t.Fatalf("block %d out of range", r.Block)
		}
		if len(r.EIRPUnits) == 0 {
			t.Fatal("request with no channels")
		}
		for c, p := range r.EIRPUnits {
			if c < 0 || c >= cfg.Channels {
				t.Fatalf("channel %d out of range", c)
			}
			if p <= 0 || p > cfg.MaxEIRPUnits {
				t.Fatalf("power %d outside (0, %d]", p, cfg.MaxEIRPUnits)
			}
		}
		if ids[r.SU] {
			t.Fatalf("duplicate SU id %s", r.SU)
		}
		ids[r.SU] = true
	}
}

func TestSUWorkloadDeterministic(t *testing.T) {
	a, err := SUWorkload(suConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SUWorkload(suConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Block != b[i].Block || a[i].SU != b[i].SU {
			t.Fatalf("request %d differs", i)
		}
		for c, p := range a[i].EIRPUnits {
			if b[i].EIRPUnits[c] != p {
				t.Fatalf("request %d channel %d power differs", i, c)
			}
		}
	}
}

func TestVirtualChannelsSuppressUpdates(t *testing.T) {
	base := puConfig()
	base.ZipfS = 0 // uniform, so suppression depends only on v
	dense, err := PUSchedule(base)
	if err != nil {
		t.Fatal(err)
	}
	sparseCfg := base
	sparseCfg.VirtualsPerPhysical = 8
	sparse, err := PUSchedule(sparseCfg)
	if err != nil {
		t.Fatal(err)
	}
	// With 8 virtual channels per physical and few physical
	// channels, many hops stay inside one physical channel and are
	// absorbed — the emitted schedule must shrink noticeably.
	if len(sparse) >= len(dense) {
		t.Errorf("virtual channels did not reduce update count: %d >= %d", len(sparse), len(dense))
	}
	for _, e := range sparse {
		if e.Channel < -1 || e.Channel >= base.Channels {
			t.Fatalf("physical channel %d out of range", e.Channel)
		}
	}
	// Consecutive events for one PU never repeat the same physical
	// channel (that is the whole point of the suppression).
	last := make(map[string]int)
	for _, e := range sparse {
		if prev, ok := last[string(e.PU)]; ok && prev == e.Channel && e.Channel >= 0 {
			t.Fatalf("PU %s emitted a no-op physical switch to %d", e.PU, e.Channel)
		}
		last[string(e.PU)] = e.Channel
	}
	if _, err := PUSchedule(PUConfig{
		Seed: 1, PUs: 1, Blocks: 1, Channels: 1,
		SwitchesPerHour: 1, VirtualsPerPhysical: -1, Horizon: time.Hour,
	}); err == nil {
		t.Error("negative VirtualsPerPhysical accepted")
	}
}
