package watch

import (
	"fmt"

	"pisa/internal/geo"
)

// Utilization summarises secondary spectrum availability across the
// service area — the quantity WATCH's introduction argues is "vastly
// increased" over the TV-white-space model.
type Utilization struct {
	// PerChannel[c] is the fraction of blocks on channel c where an
	// SU could be granted at least the query power.
	PerChannel []float64
	// Overall is the mean across channels.
	Overall float64
	// AvailableCells counts the (channel, block) cells at or above
	// the query power.
	AvailableCells int
	// TotalCells is Channels * Blocks.
	TotalCells int
}

// Availability computes, under the current budgets, where an SU
// demanding at least minEIRPUnits could operate. minEIRPUnits of the
// regulatory cap answers "where is full power available?"; smaller
// values answer "where could a low-power device squeeze in?".
func (s *System) Availability(minEIRPUnits int64) (Utilization, error) {
	if minEIRPUnits <= 0 {
		return Utilization{}, fmt.Errorf("watch: query power must be positive, got %d", minEIRPUnits)
	}
	u := Utilization{
		PerChannel: make([]float64, s.params.Channels),
		TotalCells: s.params.Channels * s.params.Grid.Blocks(),
	}
	for c := 0; c < s.params.Channels; c++ {
		available := 0
		for b := 0; b < s.params.Grid.Blocks(); b++ {
			maxEIRP, err := s.MaxEIRPUnits(c, geo.BlockID(b))
			if err != nil {
				return Utilization{}, err
			}
			if maxEIRP >= minEIRPUnits {
				available++
			}
		}
		u.PerChannel[c] = float64(available) / float64(s.params.Grid.Blocks())
		u.AvailableCells += available
	}
	u.Overall = float64(u.AvailableCells) / float64(u.TotalCells)
	return u, nil
}

// CapacityMap returns the maximum grantable EIRP (in units) for every
// block of one channel — the per-block cap WATCH publishes (eq. 2),
// and the raw data behind coverage heat maps.
func (s *System) CapacityMap(channel int) ([]int64, error) {
	if channel < 0 || channel >= s.params.Channels {
		return nil, fmt.Errorf("watch: channel %d outside [0, %d)", channel, s.params.Channels)
	}
	out := make([]int64, s.params.Grid.Blocks())
	for b := range out {
		v, err := s.MaxEIRPUnits(channel, geo.BlockID(b))
		if err != nil {
			return nil, err
		}
		out[b] = v
	}
	return out, nil
}
