package watch

import (
	"testing"

	"pisa/internal/geo"
)

func TestAvailabilityFullWhenIdle(t *testing.T) {
	s := newTestSystem(t, nil)
	maxUnits := s.Params().Quantize(s.Params().SUMaxEIRPmW)
	u, err := s.Availability(maxUnits)
	if err != nil {
		t.Fatalf("Availability: %v", err)
	}
	if u.Overall != 1.0 {
		t.Errorf("idle availability = %.3f, want 1.0", u.Overall)
	}
	if u.AvailableCells != u.TotalCells {
		t.Errorf("cells %d/%d", u.AvailableCells, u.TotalCells)
	}
	if len(u.PerChannel) != s.Params().Channels {
		t.Errorf("PerChannel has %d entries", len(u.PerChannel))
	}
}

func TestAvailabilityDropsAroundActivePU(t *testing.T) {
	s := newTestSystem(t, nil)
	maxUnits := s.Params().Quantize(s.Params().SUMaxEIRPmW)
	weak := s.Params().Quantize(s.Params().SMinPUmW)
	if err := s.UpdatePU("tv", Registration{Block: 30, Channel: 1, SignalUnits: weak}); err != nil {
		t.Fatal(err)
	}
	u, err := s.Availability(maxUnits)
	if err != nil {
		t.Fatal(err)
	}
	if u.PerChannel[1] >= 1.0 {
		t.Error("active weak PU did not reduce full-power availability on its channel")
	}
	for c := 0; c < s.Params().Channels; c++ {
		if c != 1 && u.PerChannel[c] != 1.0 {
			t.Errorf("channel %d availability %.3f affected by PU on channel 1", c, u.PerChannel[c])
		}
	}
	// Low-power availability stays higher: fine-grained sharing at
	// work.
	low, err := s.Availability(s.Params().Quantize(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if low.PerChannel[1] < u.PerChannel[1] {
		t.Errorf("low-power availability %.3f below full-power %.3f", low.PerChannel[1], u.PerChannel[1])
	}
}

func TestAvailabilityWATCHBeatsTVWS(t *testing.T) {
	// The motivating claim: with no active receivers, WATCH offers
	// full availability where TVWS still protects broadcast contours.
	tx := TVTransmitter{Location: geo.Point{X: 30, Y: 30}, Channel: 1, EIRPmW: 1e9}
	wcfg := testParams(t)
	watchSys, err := NewSystem(wcfg, []TVTransmitter{tx})
	if err != nil {
		t.Fatal(err)
	}
	tcfg := testParams(t)
	tcfg.ConservativeContours = true
	tvwsSys, err := NewSystem(tcfg, []TVTransmitter{tx})
	if err != nil {
		t.Fatal(err)
	}
	maxUnits := wcfg.Quantize(wcfg.SUMaxEIRPmW)
	wu, err := watchSys.Availability(maxUnits)
	if err != nil {
		t.Fatal(err)
	}
	tu, err := tvwsSys.Availability(maxUnits)
	if err != nil {
		t.Fatal(err)
	}
	if wu.Overall <= tu.Overall {
		t.Errorf("WATCH availability %.3f not above TVWS %.3f", wu.Overall, tu.Overall)
	}
	if wu.Overall != 1.0 {
		t.Errorf("WATCH with no active receivers should be fully available, got %.3f", wu.Overall)
	}
}

func TestAvailabilityValidation(t *testing.T) {
	s := newTestSystem(t, nil)
	if _, err := s.Availability(0); err == nil {
		t.Error("zero query power accepted")
	}
	if _, err := s.Availability(-5); err == nil {
		t.Error("negative query power accepted")
	}
}

func TestCapacityMap(t *testing.T) {
	s := newTestSystem(t, nil)
	weak := s.Params().Quantize(s.Params().SMinPUmW)
	if err := s.UpdatePU("tv", Registration{Block: 30, Channel: 1, SignalUnits: weak}); err != nil {
		t.Fatal(err)
	}
	m, err := s.CapacityMap(1)
	if err != nil {
		t.Fatalf("CapacityMap: %v", err)
	}
	if len(m) != s.Params().Grid.Blocks() {
		t.Fatalf("map has %d entries", len(m))
	}
	// The cap at the PU's own block is the area minimum.
	min := m[0]
	for _, v := range m {
		if v < min {
			min = v
		}
	}
	if m[30] != min {
		t.Errorf("cap at the PU block (%d) is not the minimum (%d)", m[30], min)
	}
	if _, err := s.CapacityMap(-1); err == nil {
		t.Error("negative channel accepted")
	}
	if _, err := s.CapacityMap(99); err == nil {
		t.Error("out-of-range channel accepted")
	}
}
