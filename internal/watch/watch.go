// Package watch implements the plaintext WATCH dynamic
// spectrum-sharing system (Zhang & Knightly, MobiHoc'15) as described
// in §III-A and §IV-A of the PISA paper. It is both the baseline PISA
// is compared against and the functional oracle PISA's encrypted
// pipeline must agree with.
//
// All signal strengths are carried as scaled integers ("units"):
// Params.UnitsPerMW units per milliwatt, matching the paper's 60-bit
// integer representation (§VI-A, Table I).
package watch

import (
	"fmt"
	"math"

	"pisa/internal/geo"
	"pisa/internal/matrix"
	"pisa/internal/propagation"
)

// PUID identifies a registered primary (TV receiver) user.
type PUID string

// Params configures a WATCH/PISA deployment. The same Params drive
// both the plaintext system here and the encrypted system in
// internal/pisa, so the two compute identical decisions.
type Params struct {
	// Channels is C, the number of quantised TV channels.
	Channels int
	// Grid is the quantised service area (B blocks).
	Grid *geo.Grid
	// UnitsPerMW is the fixed-point scale: integer units per
	// milliwatt. The paper's 60-bit representation corresponds to
	// picowatt-ish granularity; 1e12 is the default.
	UnitsPerMW float64
	// SUMaxEIRPmW is S_max^SU, the regulatory cap on SU EIRP in mW
	// (4 W = 4000 mW for TVWS devices).
	SUMaxEIRPmW float64
	// SMinPUmW is S_sv_min^PU, the minimum usable TV signal in mW.
	SMinPUmW float64
	// DeltaInt is X = round(Delta_TV_SINR + Delta_redn) as the
	// integer plaintext scalar the protocol multiplies by (eq. 6/11).
	DeltaInt int64
	// Secondary is h(.), the SU-to-PU path-loss model (eq. 5).
	Secondary propagation.Model
	// WorstCase is h_max(.), the most optimistic (lowest-loss)
	// propagation over a distance, used to size d^c (eq. 1).
	WorstCase propagation.Model
	// ChannelFreqMHz maps a channel index to its centre frequency.
	// Defaults to US UHF numbering (470 + 6c MHz) when nil.
	ChannelFreqMHz func(c int) float64
	// ConservativeContours switches the no-active-PU budget E to the
	// legacy "TV white space" behaviour: blocks inside a TV
	// transmitter's service contour are protected even with no
	// active receiver. Off (false) reproduces WATCH, whose point is
	// precisely that inactive channels are reusable.
	ConservativeContours bool
}

// DeltaFromDB converts protection ratios given in dB to the integer
// scalar X used throughout the protocol (rounded up, conservative).
func DeltaFromDB(sinrDB, rednDB float64) int64 {
	return int64(math.Ceil(propagation.DBToLinear(sinrDB) + propagation.DBToLinear(rednDB)))
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	switch {
	case p.Channels <= 0:
		return fmt.Errorf("watch: Channels must be positive, got %d", p.Channels)
	case p.Grid == nil:
		return fmt.Errorf("watch: Grid is required")
	case p.UnitsPerMW <= 0:
		return fmt.Errorf("watch: UnitsPerMW must be positive, got %g", p.UnitsPerMW)
	case p.SUMaxEIRPmW <= 0:
		return fmt.Errorf("watch: SUMaxEIRPmW must be positive, got %g", p.SUMaxEIRPmW)
	case p.SMinPUmW <= 0:
		return fmt.Errorf("watch: SMinPUmW must be positive, got %g", p.SMinPUmW)
	case p.DeltaInt <= 0:
		return fmt.Errorf("watch: DeltaInt must be positive, got %d", p.DeltaInt)
	case p.Secondary == nil || p.WorstCase == nil:
		return fmt.Errorf("watch: Secondary and WorstCase models are required")
	}
	return nil
}

// Quantize converts a power in mW to integer units.
func (p Params) Quantize(mw float64) int64 {
	return int64(math.Round(mw * p.UnitsPerMW))
}

// Dequantize converts integer units back to mW.
func (p Params) Dequantize(units int64) float64 {
	return float64(units) / p.UnitsPerMW
}

// freq returns the centre frequency of channel c.
func (p Params) freq(c int) float64 {
	if p.ChannelFreqMHz != nil {
		return p.ChannelFreqMHz(c)
	}
	return 470 + 6*float64(c)
}

// TVTransmitter describes a broadcast tower, public knowledge per
// §III-D.
type TVTransmitter struct {
	// Location is the tower position in the service area.
	Location geo.Point
	// Channel is the broadcast channel index.
	Channel int
	// EIRPmW is the tower's radiated power in mW.
	EIRPmW float64
}

// Registration is a PU's current operating state.
type Registration struct {
	// Block is the (public, registered) receiver location.
	Block geo.BlockID
	// Channel is the channel currently being received, or -1 when
	// the receiver is off.
	Channel int
	// SignalUnits is S_c,i^PU, the mean TV signal strength at the
	// receiver in integer units (the private datum in PISA).
	SignalUnits int64
}

// Request is an SU transmission request.
type Request struct {
	// Block is the SU's location (private in PISA).
	Block geo.BlockID
	// EIRPUnits maps channel -> requested EIRP S_c,j^SU in units.
	// Channels absent from the map are not requested.
	EIRPUnits map[int]int64
}

// Decision is the SDC's verdict on a request.
type Decision struct {
	// Granted is true when every interference budget stays positive.
	Granted bool
	// Violations lists the (channel, block) pairs whose budget was
	// exhausted; empty when Granted.
	Violations []Violation
}

// Violation pinpoints one exceeded interference budget.
type Violation struct {
	Channel int
	Block   geo.BlockID
	// BudgetUnits and InterferenceUnits expose N(c,i) and R(c,i).
	BudgetUnits       int64
	InterferenceUnits int64
}

// Planner holds the public-data precomputation every party can do
// alone: the per-channel protection distances d^c (eq. 1) and the
// F-matrix construction (eq. 5). SUs in PISA carry a Planner, not a
// System — they never see budgets.
type Planner struct {
	params      Params
	protectDist []float64 // d^c per channel (eq. 1)
}

// NewPlanner validates params and solves d^c for every channel. When
// the worst-case model is frequency aware, each channel's distance is
// derived at that channel's own centre frequency (eq. 1 makes d^c
// channel dependent); otherwise the model is used as-is for all
// channels.
func NewPlanner(params Params) (*Planner, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	pl := &Planner{
		params:      params,
		protectDist: make([]float64, params.Channels),
	}
	freqAware, _ := params.WorstCase.(propagation.FrequencyAware)
	for c := 0; c < params.Channels; c++ {
		model := params.WorstCase
		if freqAware != nil {
			model = freqAware.AtFrequency(params.freq(c))
		}
		d, err := propagation.ProtectionDistance(
			model, params.SMinPUmW, params.SUMaxEIRPmW,
			float64(params.DeltaInt), 0)
		if err != nil {
			return nil, fmt.Errorf("protection distance for channel %d: %w", c, err)
		}
		pl.protectDist[c] = d
	}
	return pl, nil
}

// Params returns the deployment configuration.
func (pl *Planner) Params() Params { return pl.params }

// ProtectionDistance returns d^c for channel c.
func (pl *Planner) ProtectionDistance(c int) (float64, error) {
	if c < 0 || c >= pl.params.Channels {
		return 0, fmt.Errorf("watch: channel %d outside [0, %d)", c, pl.params.Channels)
	}
	return pl.protectDist[c], nil
}

// System is the plaintext WATCH SDC state.
type System struct {
	planner      *Planner
	params       Params
	transmitters []TVTransmitter
	e            *matrix.Int // E: budget with no active PU (eq. 4 else-branch)
	tPrime       *matrix.Int // T': aggregated active-PU signals (eq. 3)
	n            *matrix.Int // N: current interference budgets (eq. 4)
	pus          map[PUID]Registration
}

// NewSystem initialises the SDC: precomputes the E matrix and the
// per-channel protection distances d^c (§IV-A1), and sets N = E.
func NewSystem(params Params, transmitters []TVTransmitter) (*System, error) {
	pl, err := NewPlanner(params)
	if err != nil {
		return nil, err
	}
	s := &System{
		planner:      pl,
		params:       params,
		transmitters: append([]TVTransmitter(nil), transmitters...),
		pus:          make(map[PUID]Registration),
	}
	if s.e, err = s.computeE(); err != nil {
		return nil, fmt.Errorf("compute E matrix: %w", err)
	}
	if s.tPrime, err = matrix.NewInt(params.Channels, params.Grid.Blocks()); err != nil {
		return nil, err
	}
	s.n = s.e.Clone()
	return s, nil
}

// Planner exposes the public-data precomputation of this system.
func (s *System) Planner() *Planner { return s.planner }

// computeE builds the no-active-PU budget matrix E_S(c, b): the
// interference budget that lets any SU transmit at S_max^SU (WATCH
// semantics), optionally tightened inside TV service contours
// (legacy TVWS semantics).
func (s *System) computeE() (*matrix.Int, error) {
	p := &s.params
	e, err := matrix.NewInt(p.Channels, p.Grid.Blocks())
	if err != nil {
		return nil, err
	}
	// A max-power SU co-located with the budget point causes at most
	// S_max * h(d_min) * X interference; the extra X + 1 absorbs
	// fixed-point rounding in F so that exactly-S_max passes the
	// strict I > 0 test.
	permissive := p.Quantize(p.SUMaxEIRPmW*propagation.Gain(p.Secondary, p.Grid.BlockSize()/2))*p.DeltaInt + p.DeltaInt + 1
	conservative := p.Quantize(p.SMinPUmW)
	for c := 0; c < p.Channels; c++ {
		for b := 0; b < p.Grid.Blocks(); b++ {
			budget := permissive
			if p.ConservativeContours && s.insideContour(c, geo.BlockID(b)) {
				budget = conservative
			}
			if err := e.Set(c, b, budget); err != nil {
				return nil, err
			}
		}
	}
	return e, nil
}

// insideContour reports whether block b receives at least S_min from
// some transmitter on channel c (i.e. lies inside a service contour).
func (s *System) insideContour(c int, b geo.BlockID) bool {
	center, err := s.params.Grid.Center(b)
	if err != nil {
		return false
	}
	for _, tx := range s.transmitters {
		if tx.Channel != c {
			continue
		}
		d := tx.Location.Distance(center)
		rx := tx.EIRPmW * propagation.Gain(s.params.WorstCase, d)
		if rx >= s.params.SMinPUmW {
			return true
		}
	}
	return false
}

// Params returns a copy of the system configuration.
func (s *System) Params() Params { return s.params }

// ProtectionDistance returns d^c for channel c.
func (s *System) ProtectionDistance(c int) (float64, error) {
	return s.planner.ProtectionDistance(c)
}

// EMatrix returns a copy of the precomputed E matrix.
func (s *System) EMatrix() *matrix.Int { return s.e.Clone() }

// BudgetMatrix returns a copy of the current interference budget N.
func (s *System) BudgetMatrix() *matrix.Int { return s.n.Clone() }

// SignalAt predicts the mean TV signal strength in units at block b on
// channel c from the strongest registered transmitter, the quantity a
// PU reports as S_c,i^PU. Returns 0 when no transmitter serves (c, b).
func (s *System) SignalAt(c int, b geo.BlockID) (int64, error) {
	center, err := s.params.Grid.Center(b)
	if err != nil {
		return 0, err
	}
	best := 0.0
	for _, tx := range s.transmitters {
		if tx.Channel != c {
			continue
		}
		d := tx.Location.Distance(center)
		if rx := tx.EIRPmW * propagation.Gain(s.params.WorstCase, d); rx > best {
			best = rx
		}
	}
	return s.params.Quantize(best), nil
}

// UpdatePU registers, re-tunes or switches off a PU and rebuilds T'
// and N (eqs. 3-4). A Registration with Channel < 0 removes the PU.
//
// At most one active PU may occupy a given (channel, block) cell —
// the paper's simplifying assumption (§IV-A2); with 10 m blocks,
// co-located receivers on the same channel are registered at adjacent
// blocks.
func (s *System) UpdatePU(id PUID, reg Registration) error {
	if reg.Channel >= s.params.Channels {
		return fmt.Errorf("watch: channel %d outside [0, %d)", reg.Channel, s.params.Channels)
	}
	if reg.Channel >= 0 {
		if !s.params.Grid.Valid(reg.Block) {
			return fmt.Errorf("watch: block %d invalid", reg.Block)
		}
		if reg.SignalUnits <= 0 {
			return fmt.Errorf("watch: PU signal must be positive, got %d", reg.SignalUnits)
		}
		for otherID, other := range s.pus {
			if otherID != id && other.Channel == reg.Channel && other.Block == reg.Block {
				return fmt.Errorf("watch: PU %q already active on channel %d in block %d",
					otherID, reg.Channel, reg.Block)
			}
		}
		s.pus[id] = reg
	} else {
		delete(s.pus, id)
	}
	return s.rebuild()
}

// rebuild recomputes T' from the registry and re-derives N.
func (s *System) rebuild() error {
	t, err := matrix.NewInt(s.params.Channels, s.params.Grid.Blocks())
	if err != nil {
		return err
	}
	for _, reg := range s.pus {
		cur, err := t.At(reg.Channel, int(reg.Block))
		if err != nil {
			return err
		}
		if err := t.Set(reg.Channel, int(reg.Block), cur+reg.SignalUnits); err != nil {
			return err
		}
	}
	s.tPrime = t
	n := s.e.Clone()
	err = t.ForEach(func(c, b int, v int64) error {
		if v != 0 {
			return n.Set(c, b, v)
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.n = n
	return nil
}

// ActivePUs returns the number of registered (on) PUs.
func (s *System) ActivePUs() int { return len(s.pus) }

// ComputeF builds the SU-side matrix F_j(c, i) = S_c,j^SU * h(d_ij)
// (eq. 5) in integer units, populated only for channels the SU
// requests and blocks within d^c of the SU. This is exactly the
// matrix an SU encrypts in PISA.
func (pl *Planner) ComputeF(req Request) (*matrix.Int, error) {
	p := pl.params
	if !p.Grid.Valid(req.Block) {
		return nil, fmt.Errorf("watch: SU block %d invalid", req.Block)
	}
	f, err := matrix.NewInt(p.Channels, p.Grid.Blocks())
	if err != nil {
		return nil, err
	}
	for c, eirp := range req.EIRPUnits {
		if c < 0 || c >= p.Channels {
			return nil, fmt.Errorf("watch: requested channel %d outside [0, %d)", c, p.Channels)
		}
		if eirp < 0 {
			return nil, fmt.Errorf("watch: negative EIRP %d on channel %d", eirp, c)
		}
		if eirp == 0 {
			continue
		}
		if limit := p.Quantize(p.SUMaxEIRPmW); eirp > limit {
			return nil, fmt.Errorf("watch: EIRP %d on channel %d exceeds regulatory cap %d", eirp, c, limit)
		}
		within, err := p.Grid.BlocksWithin(req.Block, pl.protectDist[c])
		if err != nil {
			return nil, err
		}
		for _, i := range within {
			d, err := p.Grid.Distance(i, req.Block)
			if err != nil {
				return nil, err
			}
			gain := propagation.Gain(p.Secondary, d)
			v := int64(math.Round(float64(eirp) * gain))
			if err := f.Set(c, int(i), v); err != nil {
				return nil, err
			}
		}
	}
	return f, nil
}

// ComputeF delegates to the system's planner.
func (s *System) ComputeF(req Request) (*matrix.Int, error) {
	return s.planner.ComputeF(req)
}

// Evaluate decides an SU request in plaintext (§IV-A3): computes
// R = F * X (eq. 6), I = N - R (eq. 7) and grants iff every populated
// budget stays strictly positive.
func (s *System) Evaluate(req Request) (Decision, error) {
	f, err := s.ComputeF(req)
	if err != nil {
		return Decision{}, err
	}
	return s.EvaluateF(f)
}

// EvaluateF decides from a precomputed F matrix; split out so tests
// and the PISA equivalence oracle can inject the exact matrix the SU
// encrypted.
func (s *System) EvaluateF(f *matrix.Int) (Decision, error) {
	var dec Decision
	dec.Granted = true
	err := f.ForEach(func(c, b int, fv int64) error {
		if fv == 0 {
			return nil
		}
		r := fv * s.params.DeltaInt
		budget, err := s.n.At(c, b)
		if err != nil {
			return err
		}
		if budget-r <= 0 {
			dec.Granted = false
			dec.Violations = append(dec.Violations, Violation{
				Channel:           c,
				Block:             geo.BlockID(b),
				BudgetUnits:       budget,
				InterferenceUnits: r,
			})
		}
		return nil
	})
	if err != nil {
		return Decision{}, err
	}
	return dec, nil
}

// MaxEIRPUnits returns the largest EIRP (in units) an SU at block j
// could be granted on channel c given current budgets — the quantity
// WATCH publishes per block (eq. 2). Useful for capacity studies and
// the TVWS-vs-WATCH comparison example.
func (s *System) MaxEIRPUnits(c int, j geo.BlockID) (int64, error) {
	p := &s.params
	if c < 0 || c >= p.Channels {
		return 0, fmt.Errorf("watch: channel %d outside [0, %d)", c, p.Channels)
	}
	if !p.Grid.Valid(j) {
		return 0, fmt.Errorf("watch: block %d invalid", j)
	}
	within, err := p.Grid.BlocksWithin(j, s.planner.protectDist[c])
	if err != nil {
		return 0, err
	}
	limit := p.Quantize(p.SUMaxEIRPmW)
	for _, i := range within {
		d, err := p.Grid.Distance(i, j)
		if err != nil {
			return 0, err
		}
		gain := propagation.Gain(p.Secondary, d)
		budget, err := s.n.At(c, int(i))
		if err != nil {
			return 0, err
		}
		// Largest s whose quantised interference stays under the
		// budget: the admission test computes F = round(s*gain) and
		// requires F*X <= budget-1, so bound F first and then s
		// conservatively (s*gain <= maxF guarantees round(s*gain)
		// <= maxF).
		maxF := (budget - 1) / p.DeltaInt
		if maxF < 0 {
			maxF = 0
		}
		allowed := int64(math.Floor(float64(maxF) / gain))
		if allowed < limit {
			limit = allowed
		}
	}
	if limit < 0 {
		limit = 0
	}
	return limit, nil
}
