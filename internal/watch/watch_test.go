package watch

import (
	"math"
	mrand "math/rand"
	"testing"

	"pisa/internal/geo"
	"pisa/internal/propagation"
)

// testParams returns a small deployment: 10x6 grid of 10 m blocks,
// 5 channels, nanowatt fixed point.
func testParams(t *testing.T) Params {
	t.Helper()
	g, err := geo.NewGrid(10, 6, 10)
	if err != nil {
		t.Fatal(err)
	}
	return Params{
		Channels:    5,
		Grid:        g,
		UnitsPerMW:  1e9,
		SUMaxEIRPmW: 4000,
		SMinPUmW:    1e-5,
		DeltaInt:    32,
		Secondary:   propagation.LogDistance{RefLossDB: 40, Exponent: 3.5},
		WorstCase:   propagation.LogDistance{RefLossDB: 38, Exponent: 2.8},
	}
}

func newTestSystem(t *testing.T, txs []TVTransmitter) *System {
	t.Helper()
	s, err := NewSystem(testParams(t), txs)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return s
}

func TestParamsValidate(t *testing.T) {
	base := testParams(t)
	mutations := []struct {
		name string
		mut  func(*Params)
	}{
		{"channels", func(p *Params) { p.Channels = 0 }},
		{"grid", func(p *Params) { p.Grid = nil }},
		{"units", func(p *Params) { p.UnitsPerMW = 0 }},
		{"sumax", func(p *Params) { p.SUMaxEIRPmW = -1 }},
		{"smin", func(p *Params) { p.SMinPUmW = 0 }},
		{"delta", func(p *Params) { p.DeltaInt = 0 }},
		{"secondary", func(p *Params) { p.Secondary = nil }},
		{"worst", func(p *Params) { p.WorstCase = nil }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			p := base
			tt.mut(&p)
			if err := p.Validate(); err == nil {
				t.Error("invalid params accepted")
			}
			if _, err := NewSystem(p, nil); err == nil {
				t.Error("NewSystem accepted invalid params")
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestDeltaFromDB(t *testing.T) {
	// 15 dB = 31.62, 3 dB = 2.0 -> ceil(33.62) = 34.
	if got := DeltaFromDB(15, 3); got != 34 {
		t.Errorf("DeltaFromDB(15, 3) = %d, want 34", got)
	}
	if got := DeltaFromDB(0, 0); got != 2 {
		t.Errorf("DeltaFromDB(0, 0) = %d, want 2", got)
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	p := testParams(t)
	for _, mw := range []float64{0, 1e-5, 1, 4000} {
		units := p.Quantize(mw)
		back := p.Dequantize(units)
		if math.Abs(back-mw) > 1/p.UnitsPerMW {
			t.Errorf("quantize round trip: %g -> %d -> %g", mw, units, back)
		}
	}
}

func TestInitialBudgetsEqualEAndPositive(t *testing.T) {
	s := newTestSystem(t, nil)
	if !s.BudgetMatrix().Equal(s.EMatrix()) {
		t.Error("initial N != E")
	}
	if !s.BudgetMatrix().AllPositive() {
		t.Error("initial budgets not all positive")
	}
}

func TestProtectionDistanceAccessor(t *testing.T) {
	s := newTestSystem(t, nil)
	d, err := s.ProtectionDistance(0)
	if err != nil {
		t.Fatalf("ProtectionDistance(0): %v", err)
	}
	// Target gain 1e-5/(4000*32) -> about 101 dB of loss -> about
	// 178 m under the worst-case model.
	if d < 100 || d > 300 {
		t.Errorf("d^c = %g m, want roughly 178", d)
	}
	for _, c := range []int{-1, 5} {
		if _, err := s.ProtectionDistance(c); err == nil {
			t.Errorf("channel %d accepted", c)
		}
	}
}

func TestSignalAtDecaysWithDistance(t *testing.T) {
	tx := TVTransmitter{Location: geo.Point{X: 5, Y: 5}, Channel: 2, EIRPmW: 1e6}
	s := newTestSystem(t, []TVTransmitter{tx})
	near, err := s.SignalAt(2, 0) // block 0 centre (5, 5): on top of tower
	if err != nil {
		t.Fatal(err)
	}
	far, err := s.SignalAt(2, 59) // opposite corner
	if err != nil {
		t.Fatal(err)
	}
	if near <= far || far < 0 {
		t.Errorf("signal near=%d far=%d, want near > far >= 0", near, far)
	}
	other, err := s.SignalAt(3, 0) // no transmitter on channel 3
	if err != nil {
		t.Fatal(err)
	}
	if other != 0 {
		t.Errorf("signal on empty channel = %d, want 0", other)
	}
}

func TestUpdatePULifecycle(t *testing.T) {
	s := newTestSystem(t, nil)
	e := s.EMatrix()
	sig := int64(10_000)

	if err := s.UpdatePU("tv1", Registration{Block: 12, Channel: 1, SignalUnits: sig}); err != nil {
		t.Fatalf("register: %v", err)
	}
	if s.ActivePUs() != 1 {
		t.Fatalf("ActivePUs = %d, want 1", s.ActivePUs())
	}
	n := s.BudgetMatrix()
	if v, _ := n.At(1, 12); v != sig {
		t.Errorf("N(1, 12) = %d, want %d", v, sig)
	}

	// Switch to channel 3: old slot reverts to E, new slot constrained.
	if err := s.UpdatePU("tv1", Registration{Block: 12, Channel: 3, SignalUnits: sig}); err != nil {
		t.Fatalf("switch: %v", err)
	}
	n = s.BudgetMatrix()
	if v, _ := n.At(1, 12); v != mustAt(t, e, 1, 12) {
		t.Errorf("N(1, 12) = %d after switch, want E value %d", v, mustAt(t, e, 1, 12))
	}
	if v, _ := n.At(3, 12); v != sig {
		t.Errorf("N(3, 12) = %d, want %d", v, sig)
	}

	// Turn off: everything reverts to E.
	if err := s.UpdatePU("tv1", Registration{Channel: -1}); err != nil {
		t.Fatalf("off: %v", err)
	}
	if s.ActivePUs() != 0 {
		t.Fatalf("ActivePUs = %d after off, want 0", s.ActivePUs())
	}
	if !s.BudgetMatrix().Equal(e) {
		t.Error("budgets did not revert to E after all PUs off")
	}
}

func mustAt(t *testing.T, m interface {
	At(c, b int) (int64, error)
}, c, b int) int64 {
	t.Helper()
	v, err := m.At(c, b)
	if err != nil {
		t.Fatalf("At(%d, %d): %v", c, b, err)
	}
	return v
}

func TestPUsShareBlockOnDistinctChannels(t *testing.T) {
	s := newTestSystem(t, nil)
	if err := s.UpdatePU("a", Registration{Block: 7, Channel: 2, SignalUnits: 300}); err != nil {
		t.Fatal(err)
	}
	if err := s.UpdatePU("b", Registration{Block: 7, Channel: 3, SignalUnits: 500}); err != nil {
		t.Fatalf("distinct channels in one block rejected: %v", err)
	}
	if v := mustAt(t, s.BudgetMatrix(), 2, 7); v != 300 {
		t.Errorf("N(2, 7) = %d, want 300", v)
	}
	if v := mustAt(t, s.BudgetMatrix(), 3, 7); v != 500 {
		t.Errorf("N(3, 7) = %d, want 500", v)
	}
}

func TestConflictingPUsRejected(t *testing.T) {
	s := newTestSystem(t, nil)
	if err := s.UpdatePU("a", Registration{Block: 7, Channel: 2, SignalUnits: 300}); err != nil {
		t.Fatal(err)
	}
	if err := s.UpdatePU("b", Registration{Block: 7, Channel: 2, SignalUnits: 500}); err == nil {
		t.Fatal("second PU on the same (channel, block) cell accepted")
	}
	// Re-registering the same PU on its own cell is fine.
	if err := s.UpdatePU("a", Registration{Block: 7, Channel: 2, SignalUnits: 400}); err != nil {
		t.Fatalf("self re-registration rejected: %v", err)
	}
	if v := mustAt(t, s.BudgetMatrix(), 2, 7); v != 400 {
		t.Errorf("N(2, 7) = %d, want 400", v)
	}
}

func TestUpdatePUValidation(t *testing.T) {
	s := newTestSystem(t, nil)
	bad := []Registration{
		{Block: 0, Channel: 99, SignalUnits: 1},
		{Block: 999, Channel: 1, SignalUnits: 1},
		{Block: 0, Channel: 1, SignalUnits: 0},
		{Block: 0, Channel: 1, SignalUnits: -5},
	}
	for i, reg := range bad {
		if err := s.UpdatePU("x", reg); err == nil {
			t.Errorf("registration %d accepted: %+v", i, reg)
		}
	}
}

func TestComputeFShapeAndValues(t *testing.T) {
	s := newTestSystem(t, nil)
	eirp := int64(1_000_000) // 1 mW in units
	f, err := s.ComputeF(Request{Block: 33, EIRPUnits: map[int]int64{2: eirp}})
	if err != nil {
		t.Fatalf("ComputeF: %v", err)
	}
	// Entry at the SU's own block: gain at the clamped half-block
	// distance (5 m).
	g := s.Params().Grid
	d, err := g.Distance(33, 33)
	if err != nil {
		t.Fatal(err)
	}
	wantSelf := int64(math.Round(float64(eirp) * propagation.Gain(s.Params().Secondary, d)))
	if v := mustAt(t, f, 2, 33); v != wantSelf {
		t.Errorf("F(2, 33) = %d, want %d", v, wantSelf)
	}
	// Channels that were not requested stay zero everywhere.
	for b := 0; b < g.Blocks(); b++ {
		if v := mustAt(t, f, 0, b); v != 0 {
			t.Fatalf("F(0, %d) = %d for unrequested channel", b, v)
		}
	}
}

func TestComputeFRespectsProtectionDistance(t *testing.T) {
	// Tight worst-case propagation shrinks d^c to about 11 m, so
	// only the SU's own and adjacent blocks are populated.
	p := testParams(t)
	p.WorstCase = propagation.LogDistance{RefLossDB: 60, Exponent: 4}
	s, err := NewSystem(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.ProtectionDistance(0)
	if err != nil {
		t.Fatal(err)
	}
	if d > 20 {
		t.Fatalf("test premise broken: d^c = %g, want < 20", d)
	}
	f, err := s.ComputeF(Request{Block: 33, EIRPUnits: map[int]int64{0: p.Quantize(p.SUMaxEIRPmW)}})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	err = f.ForEach(func(c, b int, v int64) error {
		if v != 0 {
			count++
			dist, err := p.Grid.Distance(33, geo.BlockID(b))
			if err != nil {
				return err
			}
			if dist > d {
				t.Errorf("F populated at block %d, %g m away > d^c %g", b, dist, d)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 || count > 9 {
		t.Errorf("populated entries = %d, want small neighbourhood", count)
	}
}

func TestComputeFValidation(t *testing.T) {
	s := newTestSystem(t, nil)
	overCap := s.Params().Quantize(s.Params().SUMaxEIRPmW) + 1
	bad := []Request{
		{Block: 999, EIRPUnits: map[int]int64{0: 1}},
		{Block: 0, EIRPUnits: map[int]int64{-1: 1}},
		{Block: 0, EIRPUnits: map[int]int64{9: 1}},
		{Block: 0, EIRPUnits: map[int]int64{0: -1}},
		{Block: 0, EIRPUnits: map[int]int64{0: overCap}},
	}
	for i, req := range bad {
		if _, err := s.ComputeF(req); err == nil {
			t.Errorf("request %d accepted: %+v", i, req)
		}
	}
}

func TestEvaluateGrantsWhenNoPUs(t *testing.T) {
	s := newTestSystem(t, nil)
	maxUnits := s.Params().Quantize(s.Params().SUMaxEIRPmW)
	dec, err := s.Evaluate(Request{Block: 20, EIRPUnits: map[int]int64{1: maxUnits}})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !dec.Granted {
		t.Errorf("max-power SU denied with no active PUs: %+v", dec.Violations)
	}
}

func TestEvaluateDeniesInterferingSU(t *testing.T) {
	s := newTestSystem(t, nil)
	// Weak PU (at the minimum usable signal) right next to a
	// powerful SU.
	sig := s.Params().Quantize(s.Params().SMinPUmW) // 10^4 units
	if err := s.UpdatePU("tv", Registration{Block: 21, Channel: 1, SignalUnits: sig}); err != nil {
		t.Fatal(err)
	}
	maxUnits := s.Params().Quantize(s.Params().SUMaxEIRPmW)
	dec, err := s.Evaluate(Request{Block: 20, EIRPUnits: map[int]int64{1: maxUnits}})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if dec.Granted {
		t.Fatal("max-power SU adjacent to weak PU was granted")
	}
	if len(dec.Violations) == 0 {
		t.Fatal("denial carries no violations")
	}
	v := dec.Violations[0]
	if v.Channel != 1 {
		t.Errorf("violation channel = %d, want 1", v.Channel)
	}
	if v.InterferenceUnits < v.BudgetUnits {
		t.Errorf("violation has R=%d < N=%d", v.InterferenceUnits, v.BudgetUnits)
	}
}

func TestEvaluateDecisionTracksPULifecycle(t *testing.T) {
	s := newTestSystem(t, nil)
	sig := s.Params().Quantize(s.Params().SMinPUmW)
	req := Request{Block: 20, EIRPUnits: map[int]int64{1: s.Params().Quantize(s.Params().SUMaxEIRPmW)}}

	decide := func() bool {
		t.Helper()
		dec, err := s.Evaluate(req)
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		return dec.Granted
	}

	if !decide() {
		t.Fatal("denied before any PU registered")
	}
	if err := s.UpdatePU("tv", Registration{Block: 21, Channel: 1, SignalUnits: sig}); err != nil {
		t.Fatal(err)
	}
	if decide() {
		t.Fatal("granted while PU active on requested channel")
	}
	// PU moves to a different channel: channel 1 frees up.
	if err := s.UpdatePU("tv", Registration{Block: 21, Channel: 2, SignalUnits: sig}); err != nil {
		t.Fatal(err)
	}
	if !decide() {
		t.Fatal("denied after PU switched away")
	}
	// PU back, then off.
	if err := s.UpdatePU("tv", Registration{Block: 21, Channel: 1, SignalUnits: sig}); err != nil {
		t.Fatal(err)
	}
	if decide() {
		t.Fatal("granted while PU re-activated")
	}
	if err := s.UpdatePU("tv", Registration{Channel: -1}); err != nil {
		t.Fatal(err)
	}
	if !decide() {
		t.Fatal("denied after PU switched off")
	}
}

func TestEvaluateLowPowerSUCoexists(t *testing.T) {
	s := newTestSystem(t, nil)
	// Strong PU signal: a quiet SU nearby fits inside the budget.
	sig := s.Params().Quantize(1e-2) // 40 dB above the minimum
	if err := s.UpdatePU("tv", Registration{Block: 21, Channel: 1, SignalUnits: sig}); err != nil {
		t.Fatal(err)
	}
	dec, err := s.Evaluate(Request{Block: 25, EIRPUnits: map[int]int64{1: s.Params().Quantize(1)}})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !dec.Granted {
		t.Errorf("1 mW SU 40 m from strong PU denied: %+v", dec.Violations)
	}
}

func TestMaxEIRPDropsWhenPUAppears(t *testing.T) {
	s := newTestSystem(t, nil)
	before, err := s.MaxEIRPUnits(1, 20)
	if err != nil {
		t.Fatal(err)
	}
	sig := s.Params().Quantize(s.Params().SMinPUmW)
	if err := s.UpdatePU("tv", Registration{Block: 21, Channel: 1, SignalUnits: sig}); err != nil {
		t.Fatal(err)
	}
	after, err := s.MaxEIRPUnits(1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("max EIRP did not drop: before=%d after=%d", before, after)
	}
	// Far from the PU the cap recovers (WATCH's fine-grained zone).
	farAfter, err := s.MaxEIRPUnits(1, 59)
	if err != nil {
		t.Fatal(err)
	}
	if farAfter <= after {
		t.Errorf("cap at far block %d <= cap next to PU %d", farAfter, after)
	}
}

func TestMaxEIRPValidation(t *testing.T) {
	s := newTestSystem(t, nil)
	if _, err := s.MaxEIRPUnits(-1, 0); err == nil {
		t.Error("negative channel accepted")
	}
	if _, err := s.MaxEIRPUnits(0, 999); err == nil {
		t.Error("invalid block accepted")
	}
}

func TestConservativeContoursBehaveLikeTVWS(t *testing.T) {
	tx := TVTransmitter{Location: geo.Point{X: 15, Y: 15}, Channel: 1, EIRPmW: 1e9}
	pWatch := testParams(t)
	watchSys, err := NewSystem(pWatch, []TVTransmitter{tx})
	if err != nil {
		t.Fatal(err)
	}
	pTVWS := testParams(t)
	pTVWS.ConservativeContours = true
	tvwsSys, err := NewSystem(pTVWS, []TVTransmitter{tx})
	if err != nil {
		t.Fatal(err)
	}
	// No active receivers anywhere. A max-power SU inside the
	// transmitter contour: WATCH grants, TVWS denies.
	req := Request{Block: 11, EIRPUnits: map[int]int64{1: pWatch.Quantize(4000)}}
	wd, err := watchSys.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	td, err := tvwsSys.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	if !wd.Granted {
		t.Error("WATCH denied inside inactive contour (should reuse the channel)")
	}
	if td.Granted {
		t.Error("TVWS-mode granted inside protected contour")
	}
}

func TestPerChannelProtectionDistance(t *testing.T) {
	// With a frequency-aware worst-case model, higher channels
	// (higher frequency, more loss) get smaller protection zones.
	p := testParams(t)
	p.WorstCase = propagation.FreeSpace{FreqMHz: 470}
	pl, err := NewPlanner(p)
	if err != nil {
		t.Fatal(err)
	}
	d0, err := pl.ProtectionDistance(0) // 470 MHz
	if err != nil {
		t.Fatal(err)
	}
	d4, err := pl.ProtectionDistance(4) // 494 MHz
	if err != nil {
		t.Fatal(err)
	}
	if d4 >= d0 {
		t.Errorf("d^c not decreasing with frequency: d0=%g d4=%g", d0, d4)
	}
	// A frequency-blind model yields identical distances.
	p.WorstCase = propagation.LogDistance{RefLossDB: 38, Exponent: 2.8}
	pl2, err := NewPlanner(p)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := pl2.ProtectionDistance(0)
	b, _ := pl2.ProtectionDistance(4)
	if a != b {
		t.Errorf("frequency-blind model produced distinct distances: %g vs %g", a, b)
	}
}

func TestCustomChannelFrequencies(t *testing.T) {
	p := testParams(t)
	p.WorstCase = propagation.FreeSpace{FreqMHz: 470}
	p.ChannelFreqMHz = func(c int) float64 { return 2400 + 5*float64(c) } // WiFi-style plan
	pl, err := NewPlanner(p)
	if err != nil {
		t.Fatal(err)
	}
	pDefault := testParams(t)
	pDefault.WorstCase = propagation.FreeSpace{FreqMHz: 470}
	plDefault, err := NewPlanner(pDefault)
	if err != nil {
		t.Fatal(err)
	}
	dCustom, _ := pl.ProtectionDistance(0)
	dUHF, _ := plDefault.ProtectionDistance(0)
	if dCustom >= dUHF {
		t.Errorf("2.4 GHz plan should shrink d^c versus UHF: %g vs %g", dCustom, dUHF)
	}
}

func TestMaxEIRPConsistentWithEvaluate(t *testing.T) {
	// Property: for random PU placements, a request at exactly the
	// published cap is granted and one just above a strictly smaller
	// cap is denied. This ties eq. 2 (the published cap) to the
	// admission decision (eqs. 5-7).
	s := newTestSystem(t, nil)
	rng := quickRand()
	for trial := 0; trial < 12; trial++ {
		block := geo.BlockID(rng.Intn(s.Params().Grid.Blocks()))
		channel := rng.Intn(s.Params().Channels)
		sig := s.Params().Quantize(s.Params().SMinPUmW * float64(1+rng.Intn(50)))
		if err := s.UpdatePU("prop-pu", Registration{Block: block, Channel: channel, SignalUnits: sig}); err != nil {
			t.Fatal(err)
		}
		suBlock := geo.BlockID(rng.Intn(s.Params().Grid.Blocks()))
		cap, err := s.MaxEIRPUnits(channel, suBlock)
		if err != nil {
			t.Fatal(err)
		}
		if cap <= 0 {
			continue // fully blocked cell; nothing to grant
		}
		dec, err := s.Evaluate(Request{Block: suBlock, EIRPUnits: map[int]int64{channel: cap}})
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Granted {
			t.Fatalf("trial %d: request at published cap %d denied (PU at %d ch %d, SU at %d)",
				trial, cap, block, channel, suBlock)
		}
		// Well over the cap must be denied. The cap is conservative
		// against fixed-point rounding, so only check when the
		// margin dwarfs a rounding unit and the cap sits below the
		// regulatory limit (else "over" is simply an invalid power).
		over := cap * 2
		regLimit := s.Params().Quantize(s.Params().SUMaxEIRPmW)
		if cap > 1000 && cap < regLimit && over <= regLimit {
			dec, err := s.Evaluate(Request{Block: suBlock, EIRPUnits: map[int]int64{channel: over}})
			if err != nil {
				t.Fatal(err)
			}
			if dec.Granted {
				t.Fatalf("trial %d: request %d at double the cap %d granted", trial, over, cap)
			}
		}
	}
}

// quickRand returns a fixed-seed rng for property-style loops.
func quickRand() *mrand.Rand {
	return mrand.New(mrand.NewSource(99))
}
