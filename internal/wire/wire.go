// Package wire defines the message envelope and connection framing
// for the networked PISA deployment (Figure 3 of the paper): PUs and
// SUs talk to the SDC server; the SDC talks to the STP server. All
// messages are gob-encoded envelopes over TCP.
package wire

import (
	"context"
	"crypto/rsa"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pisa/internal/paillier"
	"pisa/internal/pir"
	"pisa/internal/pisa"
)

// Kind discriminates envelope payloads.
type Kind uint8

// Message kinds. Requests and replies are paired.
const (
	KindError Kind = iota + 1

	KindPUUpdate // PU -> SDC, reply KindAck
	KindSURequest
	KindSUResponse
	KindEColumnRequest // PU -> SDC public data fetch
	KindEColumn
	KindVerifyKeyRequest // SU -> SDC verification key fetch
	KindVerifyKey

	KindConvertRequest // SDC -> STP
	KindConvertResponse
	KindSUKeyRequest // SDC (or anyone) -> STP
	KindSUKey
	KindGroupKeyRequest // anyone -> STP
	KindGroupKey
	KindRegisterSU // SU -> STP, reply KindAck

	KindPartialRequest // DistSTP combiner -> co-STP share holder
	KindPartialResponse

	KindAck

	// Batch kinds are appended after KindAck so the numbering of the
	// kinds above — and with it wire compatibility with earlier
	// binaries — is preserved.
	KindBatchConvertRequest // SDC -> STP, coalesced sign tests
	KindBatchConvertResponse

	// PIR kinds (appended for the same numbering reason): the
	// multi-server spectrum-query backend. An SU fans one
	// KindPIRQuery out to each of k replicas; KindPIRSync carries
	// plaintext PU churn to every replica.
	KindPIRMetaRequest // SU -> replica, database geometry fetch
	KindPIRMeta
	KindPIRQuery // SU -> replica, one selection-vector share
	KindPIRAnswer
	KindPIRSync // PU feed -> replica, reply KindAck

	// Shard kinds (appended): the channel-sharded SDC. A router fans
	// one KindShardQuery (carrying the SU request, usually
	// channel-sliced) out to each shard and merges the partial sums
	// from the KindShardAnswer replies.
	KindShardQuery // router -> shard, reply KindShardAnswer
	KindShardAnswer
)

// String names the kind for logs.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPUUpdate:
		return "pu-update"
	case KindSURequest:
		return "su-request"
	case KindSUResponse:
		return "su-response"
	case KindEColumnRequest:
		return "e-column-request"
	case KindEColumn:
		return "e-column"
	case KindVerifyKeyRequest:
		return "verify-key-request"
	case KindVerifyKey:
		return "verify-key"
	case KindConvertRequest:
		return "convert-request"
	case KindConvertResponse:
		return "convert-response"
	case KindSUKeyRequest:
		return "su-key-request"
	case KindSUKey:
		return "su-key"
	case KindGroupKeyRequest:
		return "group-key-request"
	case KindGroupKey:
		return "group-key"
	case KindRegisterSU:
		return "register-su"
	case KindPartialRequest:
		return "partial-request"
	case KindPartialResponse:
		return "partial-response"
	case KindAck:
		return "ack"
	case KindBatchConvertRequest:
		return "batch-convert-request"
	case KindBatchConvertResponse:
		return "batch-convert-response"
	case KindPIRMetaRequest:
		return "pir-meta-request"
	case KindPIRMeta:
		return "pir-meta"
	case KindPIRQuery:
		return "pir-query"
	case KindPIRAnswer:
		return "pir-answer"
	case KindPIRSync:
		return "pir-sync"
	case KindShardQuery:
		return "shard-query"
	case KindShardAnswer:
		return "shard-answer"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Envelope is the single message type on the wire; the Kind says
// which payload fields are meaningful.
type Envelope struct {
	Kind Kind

	// Err carries the error text for KindError replies.
	Err string

	// SUID / Block parameterise lookups and registrations.
	SUID  string
	Block int

	PUUpdate     *pisa.PUUpdate
	Request      *pisa.TransmissionRequest
	Response     *pisa.Response
	SignRequest  *pisa.SignRequest
	SignResponse *pisa.SignResponse

	// BatchSignRequest / BatchSignResponse carry coalesced sign tests
	// (KindBatchConvertRequest / KindBatchConvertResponse).
	BatchSignRequest  *pisa.BatchSignRequest
	BatchSignResponse *pisa.BatchSignResponse

	EColumn   []int64
	Paillier  *paillier.PublicKey
	VerifyKey *rsa.PublicKey

	// Ciphertexts and Partials carry threshold-decryption batches
	// between the DistSTP combiner and co-STP share holders.
	Ciphertexts []*paillier.Ciphertext
	Partials    []*paillier.Partial

	// PIR fields carry the multi-server spectrum-query backend's
	// frames (KindPIRMetaRequest/Meta/Query/Answer/Sync).
	PIRMeta   *pir.Meta
	PIRQuery  *pir.Query
	PIRAnswer *pir.Answer
	PIRSync   *pir.Update

	// ShardAnswer carries one shard's partial encrypted sum
	// (KindShardAnswer); the matching KindShardQuery reuses Request.
	ShardAnswer *pisa.ShardAnswer
}

// RemoteError is an error reported by the peer (as opposed to a
// transport failure).
type RemoteError struct {
	// Msg is the peer-provided error text.
	Msg string
	// Addr names the peer that reported the error, so failures in a
	// k-way replica fan-out are attributable. Empty when unknown.
	Addr string
}

// Error implements error.
func (e *RemoteError) Error() string {
	if e.Addr != "" {
		return "remote " + e.Addr + ": " + e.Msg
	}
	return "remote: " + e.Msg
}

// Conn wraps a net.Conn with gob framing and per-operation deadlines.
// It is not safe for concurrent use; callers serialise access.
type Conn struct {
	conn    net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	timeout time.Duration

	// dead flips when a context cancellation force-closed the socket
	// mid-operation; the connection must not be reused after that (the
	// gob stream is unsynchronised).
	dead atomic.Bool
}

// NewConn wraps an established connection. timeout bounds each
// individual send or receive; zero disables deadlines.
func NewConn(conn net.Conn, timeout time.Duration) *Conn {
	return &Conn{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		dec:     gob.NewDecoder(conn),
		timeout: timeout,
	}
}

// deadline picks the sooner of the context deadline and the
// connection's default per-operation timeout. A zero time disables
// the deadline.
func (c *Conn) deadline(ctx context.Context) time.Time {
	var d time.Time
	if c.timeout > 0 {
		d = time.Now().Add(c.timeout)
	}
	if ctxd, ok := ctx.Deadline(); ok && (d.IsZero() || ctxd.Before(d)) {
		d = ctxd
	}
	return d
}

// Send writes one envelope.
func (c *Conn) Send(env *Envelope) error {
	return c.SendContext(context.Background(), env)
}

// SendContext writes one envelope, bounding the write by the sooner
// of the context deadline and the connection timeout.
func (c *Conn) SendContext(ctx context.Context, env *Envelope) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("wire: send %s: %w", env.Kind, err)
	}
	if err := c.conn.SetWriteDeadline(c.deadline(ctx)); err != nil {
		return fmt.Errorf("wire: set write deadline: %w", err)
	}
	if err := c.enc.Encode(env); err != nil {
		return fmt.Errorf("wire: send %s: %w", env.Kind, c.ctxErr(ctx, err))
	}
	return nil
}

// Recv reads one envelope.
func (c *Conn) Recv() (*Envelope, error) {
	return c.RecvContext(context.Background())
}

// RecvContext reads one envelope, bounding the read by the sooner of
// the context deadline and the connection timeout.
func (c *Conn) RecvContext(ctx context.Context) (*Envelope, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("wire: recv: %w", err)
	}
	if err := c.conn.SetReadDeadline(c.deadline(ctx)); err != nil {
		return nil, fmt.Errorf("wire: set read deadline: %w", err)
	}
	var env Envelope
	if err := c.dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("wire: recv: %w", c.ctxErr(ctx, err))
	}
	return &env, nil
}

// Call sends a request and waits for the matching reply kind. A
// KindError reply surfaces as *RemoteError.
func (c *Conn) Call(req *Envelope, want Kind) (*Envelope, error) {
	return c.CallContext(context.Background(), req, want)
}

// CallContext performs one request/reply exchange under the context:
// the context deadline bounds each send and receive (capped by the
// connection timeout), and cancellation force-closes the socket so an
// in-flight exchange unblocks immediately instead of waiting out its
// deadline. After a cancellation the connection is Dead and must be
// discarded.
func (c *Conn) CallContext(ctx context.Context, req *Envelope, want Kind) (*Envelope, error) {
	stop := c.watchCancel(ctx)
	defer stop()
	if err := c.SendContext(ctx, req); err != nil {
		return nil, err
	}
	resp, err := c.RecvContext(ctx)
	if err != nil {
		return nil, err
	}
	if resp.Kind == KindError {
		return nil, &RemoteError{Msg: resp.Err, Addr: c.RemoteAddr()}
	}
	if resp.Kind != want {
		return nil, fmt.Errorf("wire: %s sent %s, want %s", c.RemoteAddr(), resp.Kind, want)
	}
	return resp, nil
}

// RemoteAddr names the peer, for error attribution; empty when the
// underlying transport has no address.
func (c *Conn) RemoteAddr() string {
	if addr := c.conn.RemoteAddr(); addr != nil {
		return addr.String()
	}
	return ""
}

// ctxErr attributes an I/O failure to the context when the context is
// the reason the socket died (cancellation or deadline).
func (c *Conn) ctxErr(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("%w (%v)", ctxErr, err)
	}
	// A socket timeout set from the context deadline can fire a beat
	// before the context's own timer; attribute it all the same.
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
			return fmt.Errorf("%w (%v)", context.DeadlineExceeded, err)
		}
	}
	return err
}

// watchCancel closes the connection if the context is cancelled
// before the returned stop function runs, so a cancelled caller never
// stays blocked in a read or write.
//
// stop blocks until the watcher goroutine has exited. Without the
// wait, a caller that cancels its context right after a successful
// call (the usual `defer cancel()` of a per-attempt timeout) races
// the watcher: by the time the goroutine wakes, both channels are
// ready and select picks one at random, so ~half the time it closes
// a perfectly healthy connection that the pool may already have
// handed to the next call — which then dies mid-exchange with "use
// of closed network connection". Because stop runs before the caller
// cancels, waiting here guarantees the watcher saw only finished.
func (c *Conn) watchCancel(ctx context.Context) (stop func()) {
	if ctx.Done() == nil {
		return func() {}
	}
	finished := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		select {
		case <-ctx.Done():
			c.dead.Store(true)
			c.conn.Close()
		case <-finished:
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(finished) })
		<-exited
	}
}

// Dead reports whether a cancellation closed the connection mid-call.
// A dead connection's gob stream is unsynchronised; it must not be
// pooled or reused.
func (c *Conn) Dead() bool { return c.dead.Load() }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.conn.Close() }

// SendError reports a handler failure to the peer.
func (c *Conn) SendError(err error) error {
	return c.Send(&Envelope{Kind: KindError, Err: err.Error()})
}

// IsClosed reports whether err indicates a connection that went away
// normally (EOF or closed socket), as opposed to a protocol error.
func IsClosed(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return false
	}
	s := err.Error()
	return strings.Contains(s, "EOF") || strings.Contains(s, "connection reset")
}
