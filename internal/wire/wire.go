// Package wire defines the message envelope and connection framing
// for the networked PISA deployment (Figure 3 of the paper): PUs and
// SUs talk to the SDC server; the SDC talks to the STP server. All
// messages are gob-encoded envelopes over TCP.
package wire

import (
	"crypto/rsa"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"pisa/internal/paillier"
	"pisa/internal/pisa"
)

// Kind discriminates envelope payloads.
type Kind uint8

// Message kinds. Requests and replies are paired.
const (
	KindError Kind = iota + 1

	KindPUUpdate // PU -> SDC, reply KindAck
	KindSURequest
	KindSUResponse
	KindEColumnRequest // PU -> SDC public data fetch
	KindEColumn
	KindVerifyKeyRequest // SU -> SDC verification key fetch
	KindVerifyKey

	KindConvertRequest // SDC -> STP
	KindConvertResponse
	KindSUKeyRequest // SDC (or anyone) -> STP
	KindSUKey
	KindGroupKeyRequest // anyone -> STP
	KindGroupKey
	KindRegisterSU // SU -> STP, reply KindAck

	KindPartialRequest // DistSTP combiner -> co-STP share holder
	KindPartialResponse

	KindAck
)

// String names the kind for logs.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPUUpdate:
		return "pu-update"
	case KindSURequest:
		return "su-request"
	case KindSUResponse:
		return "su-response"
	case KindEColumnRequest:
		return "e-column-request"
	case KindEColumn:
		return "e-column"
	case KindVerifyKeyRequest:
		return "verify-key-request"
	case KindVerifyKey:
		return "verify-key"
	case KindConvertRequest:
		return "convert-request"
	case KindConvertResponse:
		return "convert-response"
	case KindSUKeyRequest:
		return "su-key-request"
	case KindSUKey:
		return "su-key"
	case KindGroupKeyRequest:
		return "group-key-request"
	case KindGroupKey:
		return "group-key"
	case KindRegisterSU:
		return "register-su"
	case KindPartialRequest:
		return "partial-request"
	case KindPartialResponse:
		return "partial-response"
	case KindAck:
		return "ack"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Envelope is the single message type on the wire; the Kind says
// which payload fields are meaningful.
type Envelope struct {
	Kind Kind

	// Err carries the error text for KindError replies.
	Err string

	// SUID / Block parameterise lookups and registrations.
	SUID  string
	Block int

	PUUpdate     *pisa.PUUpdate
	Request      *pisa.TransmissionRequest
	Response     *pisa.Response
	SignRequest  *pisa.SignRequest
	SignResponse *pisa.SignResponse

	EColumn   []int64
	Paillier  *paillier.PublicKey
	VerifyKey *rsa.PublicKey

	// Ciphertexts and Partials carry threshold-decryption batches
	// between the DistSTP combiner and co-STP share holders.
	Ciphertexts []*paillier.Ciphertext
	Partials    []*paillier.Partial
}

// RemoteError is an error reported by the peer (as opposed to a
// transport failure).
type RemoteError struct {
	// Msg is the peer-provided error text.
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return "remote: " + e.Msg }

// Conn wraps a net.Conn with gob framing and per-operation deadlines.
// It is not safe for concurrent use; callers serialise access.
type Conn struct {
	conn    net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	timeout time.Duration
}

// NewConn wraps an established connection. timeout bounds each
// individual send or receive; zero disables deadlines.
func NewConn(conn net.Conn, timeout time.Duration) *Conn {
	return &Conn{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		dec:     gob.NewDecoder(conn),
		timeout: timeout,
	}
}

// Send writes one envelope.
func (c *Conn) Send(env *Envelope) error {
	if c.timeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
			return fmt.Errorf("wire: set write deadline: %w", err)
		}
	}
	if err := c.enc.Encode(env); err != nil {
		return fmt.Errorf("wire: send %s: %w", env.Kind, err)
	}
	return nil
}

// Recv reads one envelope.
func (c *Conn) Recv() (*Envelope, error) {
	if c.timeout > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, fmt.Errorf("wire: set read deadline: %w", err)
		}
	}
	var env Envelope
	if err := c.dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("wire: recv: %w", err)
	}
	return &env, nil
}

// Call sends a request and waits for the matching reply kind. A
// KindError reply surfaces as *RemoteError.
func (c *Conn) Call(req *Envelope, want Kind) (*Envelope, error) {
	if err := c.Send(req); err != nil {
		return nil, err
	}
	resp, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if resp.Kind == KindError {
		return nil, &RemoteError{Msg: resp.Err}
	}
	if resp.Kind != want {
		return nil, fmt.Errorf("wire: got %s, want %s", resp.Kind, want)
	}
	return resp, nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.conn.Close() }

// SendError reports a handler failure to the peer.
func (c *Conn) SendError(err error) error {
	return c.Send(&Envelope{Kind: KindError, Err: err.Error()})
}

// IsClosed reports whether err indicates a connection that went away
// normally (EOF or closed socket), as opposed to a protocol error.
func IsClosed(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return false
	}
	s := err.Error()
	return strings.Contains(s, "EOF") || strings.Contains(s, "connection reset")
}
