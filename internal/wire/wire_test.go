package wire

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/gob"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pisa/internal/paillier"
	"pisa/internal/pir"
)

// pipePair returns two framed connections joined by an in-memory pipe.
func pipePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	ca := NewConn(a, 2*time.Second)
	cb := NewConn(b, 2*time.Second)
	t.Cleanup(func() {
		ca.Close()
		cb.Close()
	})
	return ca, cb
}

func TestSendRecvRoundTrip(t *testing.T) {
	a, b := pipePair(t)
	done := make(chan error, 1)
	go func() {
		done <- a.Send(&Envelope{Kind: KindEColumnRequest, Block: 17})
	}()
	env, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Send: %v", err)
	}
	if env.Kind != KindEColumnRequest || env.Block != 17 {
		t.Fatalf("got %+v", env)
	}
}

func TestEnvelopeCarriesCiphertexts(t *testing.T) {
	sk, err := paillier.GenerateKey(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := sk.PublicKey.EncryptInt(rand.Reader, -321)
	if err != nil {
		t.Fatal(err)
	}
	a, b := pipePair(t)
	go func() {
		_ = a.Send(&Envelope{
			Kind:     KindGroupKey,
			Paillier: sk.Public(),
		})
	}()
	env, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if env.Paillier == nil || env.Paillier.N.Cmp(sk.N) != 0 {
		t.Fatal("public key mangled in transit")
	}
	// The deserialised key must be usable for ciphertext operations.
	sum, err := env.Paillier.Add(ct, ct)
	if err != nil {
		t.Fatalf("Add with wire key: %v", err)
	}
	v, err := sk.DecryptInt(sum)
	if err != nil {
		t.Fatal(err)
	}
	if v != -642 {
		t.Fatalf("got %d, want -642", v)
	}
}

func TestEnvelopeCarriesPIRFrames(t *testing.T) {
	a, b := pipePair(t)
	go func() {
		_ = a.Send(&Envelope{
			Kind:     KindPIRQuery,
			PIRQuery: &pir.Query{Table: pir.TableBitmap, Sel: []byte{0xA5, 0x01}},
		})
		_ = a.Send(&Envelope{
			Kind:      KindPIRAnswer,
			PIRAnswer: &pir.Answer{Version: 3, Row: []byte{0x0F}},
		})
		_ = a.Send(&Envelope{
			Kind:    KindPIRSync,
			PIRSync: &pir.Update{PUID: "pu-1", Block: 7, Channel: 2, SignalUnits: 5},
		})
	}()
	q, err := b.Recv()
	if err != nil || q.PIRQuery == nil || q.PIRQuery.Table != pir.TableBitmap || !bytes.Equal(q.PIRQuery.Sel, []byte{0xA5, 0x01}) {
		t.Fatalf("query frame mangled: %+v, %v", q, err)
	}
	ans, err := b.Recv()
	if err != nil || ans.PIRAnswer == nil || ans.PIRAnswer.Version != 3 || !bytes.Equal(ans.PIRAnswer.Row, []byte{0x0F}) {
		t.Fatalf("answer frame mangled: %+v, %v", ans, err)
	}
	u, err := b.Recv()
	if err != nil || u.PIRSync == nil || u.PIRSync.PUID != "pu-1" || u.PIRSync.Block != 7 {
		t.Fatalf("sync frame mangled: %+v, %v", u, err)
	}
}

func TestCallMatchesKinds(t *testing.T) {
	a, b := pipePair(t)
	go func() {
		env, err := b.Recv()
		if err != nil {
			return
		}
		if env.Kind == KindGroupKeyRequest {
			_ = b.Send(&Envelope{Kind: KindGroupKey})
		}
	}()
	resp, err := a.Call(&Envelope{Kind: KindGroupKeyRequest}, KindGroupKey)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if resp.Kind != KindGroupKey {
		t.Fatalf("kind = %s", resp.Kind)
	}
}

func TestCallSurfacesRemoteError(t *testing.T) {
	a, b := pipePair(t)
	go func() {
		if _, err := b.Recv(); err != nil {
			return
		}
		_ = b.SendError(errors.New("budget exceeded"))
	}()
	_, err := a.Call(&Envelope{Kind: KindSURequest}, KindSUResponse)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("got %v, want RemoteError", err)
	}
	if remote.Msg != "budget exceeded" {
		t.Fatalf("msg = %q", remote.Msg)
	}
	// The error names the peer so k-way fan-out failures are
	// attributable (net.Pipe's address is the literal "pipe").
	if remote.Addr != a.RemoteAddr() || remote.Addr == "" {
		t.Fatalf("remote error addr = %q, conn says %q", remote.Addr, a.RemoteAddr())
	}
	if want := "remote " + remote.Addr + ": budget exceeded"; err.Error() != want {
		t.Fatalf("error text %q, want %q", err.Error(), want)
	}
}

func TestRemoteErrorWithoutAddr(t *testing.T) {
	err := &RemoteError{Msg: "boom"}
	if err.Error() != "remote: boom" {
		t.Fatalf("addrless remote error = %q", err.Error())
	}
}

func TestCallRejectsWrongKind(t *testing.T) {
	a, b := pipePair(t)
	go func() {
		if _, err := b.Recv(); err != nil {
			return
		}
		_ = b.Send(&Envelope{Kind: KindAck})
	}()
	if _, err := a.Call(&Envelope{Kind: KindSURequest}, KindSUResponse); err == nil {
		t.Fatal("mismatched reply kind accepted")
	}
}

func TestCallKindMismatchNamesPeer(t *testing.T) {
	a, b := pipePair(t)
	go func() {
		if _, err := b.Recv(); err != nil {
			return
		}
		_ = b.Send(&Envelope{Kind: KindAck})
	}()
	_, err := a.Call(&Envelope{Kind: KindSURequest}, KindSUResponse)
	if err == nil {
		t.Fatal("mismatched reply kind accepted")
	}
	if !strings.Contains(err.Error(), a.RemoteAddr()) {
		t.Fatalf("kind-mismatch error %q does not name peer %q", err, a.RemoteAddr())
	}
}

func TestRecvTimesOut(t *testing.T) {
	a, conn := net.Pipe()
	defer a.Close()
	c := NewConn(conn, 50*time.Millisecond)
	defer c.Close()
	start := time.Now()
	_, err := c.Recv()
	if err == nil {
		t.Fatal("Recv succeeded with no sender")
	}
	if time.Since(start) > time.Second {
		t.Fatal("deadline not applied")
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{
		KindError, KindPUUpdate, KindSURequest, KindSUResponse,
		KindEColumnRequest, KindEColumn, KindVerifyKeyRequest, KindVerifyKey,
		KindConvertRequest, KindConvertResponse, KindSUKeyRequest, KindSUKey,
		KindGroupKeyRequest, KindGroupKey, KindRegisterSU, KindAck,
		KindBatchConvertRequest, KindBatchConvertResponse,
		KindPIRMetaRequest, KindPIRMeta, KindPIRQuery, KindPIRAnswer, KindPIRSync,
	}
	seen := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has empty or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind has empty name")
	}
}

func TestIsClosed(t *testing.T) {
	if IsClosed(nil) {
		t.Error("nil is closed")
	}
	if !IsClosed(errors.New("read: EOF")) {
		t.Error("EOF not recognised")
	}
	if !IsClosed(net.ErrClosed) {
		t.Error("net.ErrClosed not recognised")
	}
	if IsClosed(errors.New("some protocol error")) {
		t.Error("protocol error misreported as closed")
	}
}

func TestCallContextCancelClosesConn(t *testing.T) {
	a, b := pipePair(t)
	go func() {
		_, _ = b.Recv() // swallow the request, never reply
	}()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := a.CallContext(ctx, &Envelope{Kind: KindGroupKeyRequest}, KindGroupKey)
	if err == nil {
		t.Fatal("cancelled call succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not attribute the cancellation", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancellation did not interrupt the in-flight call")
	}
	if !a.Dead() {
		t.Fatal("cancel-closed conn not marked dead (unsafe to reuse)")
	}
}

// scriptedConn is a net.Conn whose reads serve a pre-encoded reply
// and whose writes always succeed, both without ever blocking — so a
// CallContext over it completes without a single scheduling point.
// That starves the cancellation watcher of CPU until after the call
// returns, which is exactly the interleaving the stop barrier must
// survive.
type scriptedConn struct {
	replies bytes.Buffer
	closed  atomic.Bool
}

func (c *scriptedConn) Read(p []byte) (int, error) {
	if c.closed.Load() {
		return 0, net.ErrClosed
	}
	return c.replies.Read(p)
}

func (c *scriptedConn) Write(p []byte) (int, error) {
	if c.closed.Load() {
		return 0, net.ErrClosed
	}
	return len(p), nil
}

func (c *scriptedConn) Close() error                     { c.closed.Store(true); return nil }
func (c *scriptedConn) LocalAddr() net.Addr              { return nil }
func (c *scriptedConn) RemoteAddr() net.Addr             { return nil }
func (c *scriptedConn) SetDeadline(time.Time) error      { return nil }
func (c *scriptedConn) SetReadDeadline(time.Time) error  { return nil }
func (c *scriptedConn) SetWriteDeadline(time.Time) error { return nil }

// TestCancelAfterCallDoesNotKillConn pins the watchCancel stop
// barrier: cancelling the per-call context immediately after a
// successful CallContext (the standard `defer cancel()` of an
// attempt timeout) must never close the connection, which a pool may
// already have handed to the next caller.
//
// GOMAXPROCS(1) plus the non-blocking scriptedConn keep the watcher
// goroutine unscheduled for the whole call, so without the barrier
// it reaches its select only after both finished and ctx.Done are
// ready — a ready-ready select picks uniformly at random and closes
// the healthy connection about half the time (observed in the field
// as sporadic "use of closed network connection" on pooled RPC
// conns). With the barrier, stop returns only after the watcher has
// committed to the finished branch, so no iteration may fail.
func TestCancelAfterCallDoesNotKillConn(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	for i := 0; i < 100; i++ {
		sc := &scriptedConn{}
		if err := gob.NewEncoder(&sc.replies).Encode(&Envelope{Kind: KindAck}); err != nil {
			t.Fatal(err)
		}
		c := NewConn(sc, 2*time.Second)
		ctx, cancel := context.WithCancel(context.Background())
		_, err := c.CallContext(ctx, &Envelope{Kind: KindRegisterSU}, KindAck)
		cancel() // fires after stop(); must not race a conn close
		if err != nil {
			t.Fatalf("iteration %d: scripted call failed: %v", i, err)
		}
		runtime.Gosched() // give a stale watcher, if any survived, the CPU
		if c.Dead() || sc.closed.Load() {
			t.Fatalf("iteration %d: cancel after a successful call killed the conn", i)
		}
	}
}

func TestContextDeadlineBeatsConnTimeout(t *testing.T) {
	a, conn := net.Pipe()
	defer a.Close()
	// Generous per-conn default; the context's own deadline must win.
	c := NewConn(conn, time.Minute)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.RecvContext(ctx)
	if err == nil {
		t.Fatal("Recv succeeded with no sender")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not attribute the deadline", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("context deadline not applied over the conn default")
	}
}

func FuzzEnvelopeDecode(f *testing.F) {
	// Seed with a real encoded envelope plus junk.
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(&Envelope{Kind: KindAck, SUID: "su"})
	f.Add(buf.Bytes())
	f.Add([]byte("not gob at all"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Malformed frames must produce errors, never panics.
		var env Envelope
		_ = gob.NewDecoder(bytes.NewReader(raw)).Decode(&env)
	})
}
